"""The recovery driver: run → fail → roll back → restart.

The paper's recovery model is global rollback: "if any process fails, all
processes are rolled back to the last checkpoint, and the computation is
restarted from there."  :func:`run_with_recovery` realises it:

1. Execute one simulator attempt.  Every rank builds a fresh protocol layer;
   if a committed global checkpoint exists, the rank restores from it
   (suppression exchange + deterministic replay arming) before re-entering
   the application.
2. If the attempt completes, collect results.
3. If the failure detector fires, the whole attempt is torn down (all ranks
   rolled back) and a new attempt starts from the last *committed*
   checkpoint.  A failure before the first commit restarts from scratch.

Failure schedules are stateful across attempts: a kill event consumed in
attempt *n* does not fire again in attempt *n+1* (the faulty node has been
"replaced"), matching how mean-time-between-failure experiments are run.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

from repro.api.comms import CommLike, RawCommAdapter
from repro.errors import RecoveryError
from repro.protocol.layer import C3Layer
from repro.runtime.config import RunConfig, Variant
from repro.runtime.context import C3AppContext
from repro.simmpi.failures import CheckpointCrash, FailureSchedule, KillEvent
from repro.simmpi.simulator import SimConfig, SimResult, Simulator
from repro.statesave.storage import Storage
from repro.trace.recorder import TraceRecorder

AppMain = Callable[[C3AppContext], Any]


def resolve_sim_core(app_main: AppMain, config: RunConfig) -> str:
    """The effective simulator core for this app under this config.

    ``sim_core="coop"`` needs a resumable application: either a
    ``co_call`` generator entry (:class:`~repro.precompiler.api.
    PrecompiledApp`) or a ``main(ctx)`` that is itself a generator
    function.  Plain synchronous mains fall back to the threaded core —
    outcomes are identical either way, so the fallback is silent.
    """
    if config.sim_core == "threads":
        return "threads"
    coop_capable = hasattr(app_main, "co_call") or inspect.isgeneratorfunction(
        app_main
    )
    return "coop" if coop_capable else "threads"


def _co_app_result(app_main: AppMain, app_ctx: C3AppContext):
    """Invoke the application's generator form (coop-core rank bodies)."""
    co_call = getattr(app_main, "co_call", None)
    if co_call is not None:
        return (yield from co_call(app_ctx))
    return (yield from app_main(app_ctx))


@dataclass
class AttemptRecord:
    """Outcome of one simulation attempt."""

    index: int
    completed: bool
    failed: bool
    dead_ranks: tuple[int, ...]
    started_from_epoch: Optional[int]
    virtual_time: float
    wall_seconds: float
    #: Failure-schedule events realised *during this attempt* (the
    #: attempt-indexed accounting chaos campaigns and post-mortems read):
    #: time-indexed kills consumed by the scheduler …
    kills: tuple[KillEvent, ...] = ()
    #: … and mid-checkpoint crashes realised by stable storage.
    checkpoint_crashes: tuple[CheckpointCrash, ...] = ()
    #: Per-stage pipeline accounting for *this attempt only*, aggregated
    #: over ranks.  ``RunOutcome.stage_totals()`` sums these across
    #: attempts — each attempt builds fresh layers, so summing never
    #: double-counts.
    stage_calls: dict[str, int] = field(default_factory=dict)
    stage_seconds: dict[str, float] = field(default_factory=dict)


@dataclass
class RunOutcome:
    """Final outcome of a driver run."""

    results: list[Any]
    attempts: list[AttemptRecord] = field(default_factory=list)
    total_wall_seconds: float = 0.0
    total_virtual_time: float = 0.0
    #: Number of checkpoint waves committed *during this run* (commit
    #: events observed on the storage, not the last epoch index — the two
    #: differ whenever the storage carries commits from an earlier run).
    checkpoints_committed: int = 0
    #: Bytes written to stable storage during this run (not cumulative
    #: over a shared/reused storage).
    storage_bytes_written: int = 0
    #: Per-rank protocol layer stats from the final (successful) attempt.
    layer_stats: list[Any] = field(default_factory=list)
    network_bytes: int = 0
    network_messages: int = 0
    #: The run's :class:`~repro.trace.TraceRecorder` when the config armed
    #: tracing (``RunConfig.trace=True``) or the caller supplied one;
    #: ``None`` otherwise.
    trace: Optional[TraceRecorder] = None

    @property
    def restarts(self) -> int:
        return max(0, len(self.attempts) - 1)

    @property
    def completed(self) -> bool:
        return bool(self.attempts) and self.attempts[-1].completed

    def stage_totals(self) -> dict[str, dict[str, float]]:
        """Per-stage pipeline overhead, aggregated over ranks *and attempts*.

        ``{stage_name: {"calls": int, "seconds": float}}`` summed from each
        attempt's :class:`AttemptRecord` stage accounting (every attempt
        builds fresh layers, so the sum never double-counts); empty for V0
        (the empty stack dispatches into no stages).  Falls back to the
        final attempt's ``layer_stats`` for outcomes recorded before
        per-attempt accounting existed.
        """
        totals: dict[str, dict[str, float]] = {}
        saw_attempt_stats = False
        for rec in self.attempts:
            calls_map = getattr(rec, "stage_calls", None) or {}
            seconds_map = getattr(rec, "stage_seconds", None) or {}
            if calls_map or seconds_map:
                saw_attempt_stats = True
            for name, calls in calls_map.items():
                entry = totals.setdefault(name, {"calls": 0, "seconds": 0.0})
                entry["calls"] += calls
            for name, seconds in seconds_map.items():
                entry = totals.setdefault(name, {"calls": 0, "seconds": 0.0})
                entry["seconds"] += seconds
        if saw_attempt_stats:
            return totals
        for stats in self.layer_stats:
            if stats is None:
                continue
            for name, calls in getattr(stats, "stage_calls", {}).items():
                entry = totals.setdefault(name, {"calls": 0, "seconds": 0.0})
                entry["calls"] += calls
            for name, seconds in getattr(stats, "stage_seconds", {}).items():
                entry = totals.setdefault(name, {"calls": 0, "seconds": 0.0})
                entry["seconds"] += seconds
        return totals

    def metrics_snapshot(self) -> dict[str, Any]:
        """This outcome rendered under the unified ``repro.metrics/1``
        schema (see :mod:`repro.trace.metrics`)."""
        from repro.trace.metrics import outcome_metrics

        return outcome_metrics(self).snapshot()


def run_with_recovery(
    app_main: AppMain,
    config: RunConfig,
    failures: FailureSchedule | None = None,
    storage: Storage | None = None,
    tracer: Optional[TraceRecorder] = None,
) -> RunOutcome:
    """Execute ``app_main`` under the given variant until it completes.

    ``app_main`` receives a :class:`C3AppContext`.  Returns per-rank results
    plus attempt/overhead accounting.  Raises :class:`RecoveryError` when
    ``config.max_restarts`` is exceeded.

    ``tracer`` arms the :mod:`repro.trace` event bus for this run even when
    the config does not; passing a recorder you own means its events
    survive a raising run (the chaos flight recorder relies on this).
    ``config.trace=True`` builds one sized by ``config.trace_buffer``.
    """
    storage = storage if storage is not None else Storage.from_config(config)
    if tracer is None and config.trace:
        tracer = TraceRecorder(capacity=config.trace_buffer)
    failures = failures if failures is not None else FailureSchedule.none()
    # Mid-checkpoint crashes fire inside the storage write path, not at a
    # scheduling point; the store realises them (torn generation +
    # ProcessKilled) when the doomed rank writes the doomed epoch.  Always
    # (re)assigned so a crash left unfired by an earlier run on a reused
    # storage cannot leak into this one.
    storage.crash_plan = (
        failures if failures.remaining_checkpoint_crashes() else None
    )
    # Resolve the declared stage stack for this run (the V0-V3 mapping, or
    # a custom registered stack named by config.stack).
    spec = config.stack_spec()
    c3cfg = spec.c3_config(config)
    # A stack that omits application state from its checkpoints (V2,
    # "Checkpointing, No Application State") cannot *resume* from one: the
    # protocol window would be mid-run while the application restarts from
    # its entry point, desynchronising replay (log-kind mismatches, served
    # stale early messages, deadlocks).  Such runs measure checkpointing
    # overhead; their only sound recovery is re-execution from scratch.
    can_restore = config.checkpointing_active and c3cfg.save_app_state
    # The empty stack is V0 "Unmodified Program": the pipeline in raw
    # pass-through mode — no piggyback word, no protocol state.
    use_raw = not spec.stages
    outcome = RunOutcome(results=[], trace=tracer)
    wall_start = time.perf_counter()
    commits_at_start = storage.commits
    bytes_at_start = storage.bytes_written
    # The per-attempt layer registry lets us read stats after a run; keyed
    # by rank, reset on every attempt so per-attempt stage accounting never
    # reads a stale layer from an earlier attempt.
    layers: list[Optional[CommLike]] = [None] * config.nprocs
    # Stable storage emits store/commit events for the duration of this run
    # (cleared on exit so a reused storage cannot feed a finished recorder).
    if tracer is not None:
        storage.tracer = tracer

    try:
        outcome = _recovery_loop(
            app_main, config, failures, storage, tracer, outcome, layers,
            spec, c3cfg, can_restore, use_raw,
        )
    finally:
        if tracer is not None:
            storage.tracer = None
    outcome.total_wall_seconds = time.perf_counter() - wall_start
    outcome.checkpoints_committed = storage.commits - commits_at_start
    outcome.storage_bytes_written = storage.bytes_written - bytes_at_start
    return outcome


def _attempt_stage_totals(
    layers: list[Optional[CommLike]],
) -> tuple[dict[str, int], dict[str, float]]:
    """Aggregate one attempt's per-rank stage accounting over ranks."""
    calls: dict[str, int] = {}
    seconds: dict[str, float] = {}
    for layer in layers:
        stats = getattr(layer, "stats", None)
        if stats is None:
            continue
        for name, n in getattr(stats, "stage_calls", {}).items():
            calls[name] = calls.get(name, 0) + n
        for name, secs in getattr(stats, "stage_seconds", {}).items():
            seconds[name] = seconds.get(name, 0.0) + secs
    return calls, seconds


def _recovery_loop(
    app_main: AppMain,
    config: RunConfig,
    failures: FailureSchedule,
    storage: Storage,
    tracer: Optional[TraceRecorder],
    outcome: RunOutcome,
    layers: list[Optional[CommLike]],
    spec: Any,
    c3cfg: Any,
    can_restore: bool,
    use_raw: bool,
) -> RunOutcome:
    sim_core = resolve_sim_core(app_main, config)
    attempt_index = 0
    while True:
        failures.begin_attempt(attempt_index)
        kills_before = len(failures.consumed_events())
        crashes_before = len(failures.fired_checkpoint_crashes())
        committed = storage.committed_epoch() if can_restore else None
        layers[:] = [None] * config.nprocs
        if tracer is not None:
            tracer.begin_attempt(attempt_index)
            tracer.emit(
                "recovery", "attempt_begin", t=0.0,
                from_epoch=committed, restarts=attempt_index,
            )

        def rank_main(rank_ctx, _committed=committed):
            if use_raw:
                adapter = RawCommAdapter(rank_ctx.comm)
                layers[rank_ctx.rank] = adapter
                rank_ctx.c3 = adapter
                app_ctx = C3AppContext(rank_ctx, adapter)
                if sim_core == "coop":
                    return _co_app_result(app_main, app_ctx)
                return app_main(app_ctx)
            layer = C3Layer(rank_ctx.comm, c3cfg, storage, stack=spec)
            layers[rank_ctx.rank] = layer
            rank_ctx.c3 = layer
            if sim_core == "coop":
                # Returns a generator: the coop core drives restore and the
                # application as one resumable rank body.
                return _co_staged_rank(rank_ctx, layer, _committed)
            restored_state = None
            restored = False
            if _committed is not None:
                data = storage.read_state(rank_ctx.rank, _committed)
                logs = storage.read_log(rank_ctx.rank, _committed)
                layer.restore_from(data, logs)
                restored_state = data.app_state
                restored = True
                rank_ctx.restoring = True
            app_ctx = C3AppContext(
                rank_ctx, layer, restored_app_state=restored_state, restored=restored
            )
            return app_main(app_ctx)

        def _co_staged_rank(rank_ctx, layer, _committed):
            restored_state = None
            restored = False
            if _committed is not None:
                data = storage.read_state(rank_ctx.rank, _committed)
                logs = storage.read_log(rank_ctx.rank, _committed)
                yield from layer.co_restore_from(data, logs)
                restored_state = data.app_state
                restored = True
                rank_ctx.restoring = True
            app_ctx = C3AppContext(
                rank_ctx, layer, restored_app_state=restored_state, restored=restored
            )
            return (yield from _co_app_result(app_main, app_ctx))

        sim = Simulator(
            SimConfig(
                nprocs=config.nprocs,
                seed=config.seed + attempt_index,  # fresh interleavings per attempt
                app_seed=config.seed,              # application randomness stable
                sched_policy=config.sched_policy,
                ordering=config.ordering,
                base_delay=config.base_delay,
                jitter=config.jitter,
                detector_timeout=config.detector_timeout,
                cost_model=config.cost_model,
                max_slices=config.max_slices,
                sim_core=sim_core,
            ),
            rank_main,
            failures=failures,
            tracer=tracer,
        )
        try:
            result: SimResult = sim.run()
        except BaseException:
            # Keep the recorder coherent even when the attempt dies on an
            # unexpected exception: the flight recorder reads its events.
            if tracer is not None:
                tracer.end_attempt(sim.clock.now)
            raise
        attempt_calls, attempt_seconds = _attempt_stage_totals(layers)
        outcome.attempts.append(
            AttemptRecord(
                index=attempt_index,
                completed=result.completed,
                failed=result.failed,
                dead_ranks=result.dead_ranks,
                started_from_epoch=committed,
                virtual_time=result.virtual_time,
                wall_seconds=result.wall_seconds,
                kills=failures.consumed_events()[kills_before:],
                checkpoint_crashes=failures.fired_checkpoint_crashes()[
                    crashes_before:
                ],
                stage_calls=attempt_calls,
                stage_seconds=attempt_seconds,
            )
        )
        outcome.total_virtual_time += result.virtual_time
        outcome.network_bytes += result.network.bytes_delivered
        outcome.network_messages += result.network.delivered
        attempt_index += 1
        if tracer is not None:
            tracer.emit(
                "recovery", "attempt_end", t=result.virtual_time,
                completed=result.completed, failed=result.failed,
                dead_ranks=list(result.dead_ranks),
            )
            tracer.end_attempt(result.virtual_time)

        if result.completed:
            outcome.results = result.results
            outcome.layer_stats = [
                layer.stats if layer is not None else None for layer in layers
            ]
            break
        if not result.failed:
            raise RecoveryError("attempt neither completed nor failed — simulator bug")
        if attempt_index > config.max_restarts:
            raise RecoveryError(
                f"exceeded max_restarts={config.max_restarts}; "
                f"last failure killed ranks {result.dead_ranks}"
            )
        # A failure may have torn a checkpoint write mid-flight, leaving
        # chunks with no manifest; reclaim them here, off the hot path.
        sweep = getattr(storage, "sweep_orphans", None)
        if sweep is not None:
            sweep()

    return outcome


def run_variant_suite(
    app_main: AppMain,
    base_config: RunConfig,
    variants: tuple[Variant, ...] = (
        Variant.UNMODIFIED,
        Variant.PIGGYBACK,
        Variant.NO_APP_STATE,
        Variant.FULL,
    ),
    storage_factory: Optional[Callable[[], Storage]] = None,
) -> dict[Variant, RunOutcome]:
    """Run the same application under each variant (the Figure-8 protocol).

    Each variant gets a fresh storage from ``storage_factory`` (in-memory
    by default) so checkpoints from one variant cannot leak into another.

    Prefer :meth:`repro.Session.sweep`, which executes the same cells — in
    parallel, with identical results.
    """
    outcomes: dict[Variant, RunOutcome] = {}
    for variant in variants:
        cfg = replace(base_config, variant=variant)
        if storage_factory is not None:
            storage = storage_factory()
        else:
            # In-memory per variant (never a shared directory), but with
            # the config's ckpt_* knobs honoured.
            storage = Storage.from_config(replace(cfg, storage_path=None))
        outcomes[variant] = run_with_recovery(app_main, cfg, storage=storage)
    return outcomes
