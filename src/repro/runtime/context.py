"""The application-facing context for checkpointable MPI programs.

:class:`C3AppContext` is what an application's ``main(ctx)`` receives when
run under the recovery driver.  It exposes:

* ``ctx.mpi`` — the full MPI interface, routed through the C3 protocol
  layer (or a pass-through configuration for baseline variants);
* ``ctx.potential_checkpoint()`` — the paper's ``PotentialCheckpoint``
  call, the only source modification the paper asks of programmers;
* ``ctx.checkpointable_state(init)`` — the *manual* state-saving path: the
  application registers one state object; on a fresh start ``init()``
  builds it, on restart the checkpointed copy is returned.  (The
  precompiler package provides the *automated* path, where the transformed
  code saves and rebuilds its own stack.)
* ``ctx.nondet(fn)`` — non-deterministic decisions, logged/replayed by the
  protocol (Section 3.2);
* ``ctx.compute(flops)`` — virtual-time accounting for compute phases.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ConfigError
from repro.simmpi.simulator import RankContext
from repro.statesave.globals_registry import DEFAULT_REGISTRY

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.comms import CommLike


class C3AppContext:
    """Per-rank application handle under the recovery driver."""

    def __init__(
        self,
        rank_ctx: RankContext,
        layer: "CommLike",
        restored_app_state: Any = None,
        restored: bool = False,
    ) -> None:
        self._rank_ctx = rank_ctx
        #: The messaging surface — any CommLike implementation (the C3
        #: protocol layer for V1–V3, the raw adapter for V0).
        self.mpi: "CommLike" = layer
        self._registered_state: Any = None
        self._state_registered = False
        self._restored_app_state = restored_app_state
        self.restored = restored
        #: Opaque run parameters (set by PrecompiledApp or harness code).
        self.params: Any = None
        layer.state_provider = self._capture_state
        # Registered module globals (repro.statesave.checkpointable_state)
        # ride along in every checkpoint blob.  Module globals are shared
        # process-wide in the simulator, so rank 0's snapshot is the
        # canonical copy written back on restart.
        if (
            restored
            and rank_ctx.rank == 0
            and isinstance(restored_app_state, dict)
            and restored_app_state.get("globals")
        ):
            DEFAULT_REGISTRY.restore(restored_app_state["globals"])

    # ------------------------------------------------------------------ #

    @property
    def rank(self) -> int:
        return self._rank_ctx.rank

    @property
    def size(self) -> int:
        return self._rank_ctx.size

    @property
    def rng(self):
        """Per-rank deterministic RNG (route draws through ``nondet`` if
        they happen after a checkpoint and can influence messages)."""
        return self._rank_ctx.rng

    def compute(self, flops: float = 0.0, seconds: float = 0.0) -> None:
        self._rank_ctx.compute(flops, seconds)

    def wtime(self) -> float:
        return self._rank_ctx.wtime()

    def now(self) -> float:
        """Virtual time, the replay-stable substitute for ``time.time()``
        (what ``repro-check --fix`` rewrites wall-clock reads into)."""
        return self.wtime()

    # ------------------------------------------------------------------ #

    def checkpointable_state(self, init: Callable[[], Any]) -> Any:
        """Register (and obtain) the application's checkpointable state.

        Call exactly once, before the main loop.  Returns ``init()`` on a
        fresh start and the restored state object on a restart.  The same
        object is captured at every subsequent checkpoint, so applications
        should mutate it in place.

        The per-rank RNG stream rides along automatically: like any other
        application memory (the paper's VDS/heap view of a C ``rand``
        state), its position is checkpointed and resumes mid-stream on
        restart — so ``ctx.rng`` draws are deterministic application
        computation, not protocol-level non-determinism.
        """
        if self._state_registered:
            raise ConfigError("checkpointable_state() may only be called once")
        self._state_registered = True
        if self.restored and self._restored_app_state is not None:
            blob = self._restored_app_state
            if isinstance(blob, dict) and "user" in blob and "rng" in blob:
                self._rank_ctx.rng = blob["rng"]
                self._registered_state = blob["user"]
            else:  # legacy/bare blob
                self._registered_state = blob
        else:
            self._registered_state = init()
        return self._registered_state

    def _capture_state(self) -> Any:
        state = {"user": self._registered_state, "rng": self._rank_ctx.rng}
        registered = DEFAULT_REGISTRY.snapshot()
        if registered:
            state["globals"] = registered
        return state

    # ------------------------------------------------------------------ #

    def potential_checkpoint(self) -> bool:
        """The paper's ``PotentialCheckpoint()`` call."""
        return self.mpi.potential_checkpoint()

    def nondet(self, compute: Callable[[], Any]) -> Any:
        """Make a non-deterministic decision under protocol logging."""
        return self.mpi.nondet(compute)

    def random(self) -> float:
        """Protocol-logged uniform variate from the per-rank stream."""
        return self.nondet(self._rank_ctx.rng.random)

    # -- generator twins (cooperative core) ----------------------------- #
    #
    # Used by generator application mains and by the precompiler's
    # cooperative code objects; CommLike implementations without a co_*
    # surface (hand-written doubles) are called synchronously, which is
    # correct because such stand-ins never suspend.

    def co_potential_checkpoint(self):
        co = getattr(self.mpi, "co_potential_checkpoint", None)
        if co is None:
            return self.mpi.potential_checkpoint()
        return (yield from co())

    def co_nondet(self, compute: Callable[[], Any]):
        co = getattr(self.mpi, "co_nondet", None)
        if co is None:
            return self.mpi.nondet(compute)
        return (yield from co(compute))

    def co_random(self):
        return (yield from self.co_nondet(self._rank_ctx.rng.random))
