"""Run orchestration: application context, variants, recovery driver."""

from repro.runtime.config import RunConfig, Variant
from repro.runtime.context import C3AppContext
from repro.runtime.driver import AttemptRecord, RunOutcome, run_variant_suite, run_with_recovery

__all__ = [
    "AttemptRecord",
    "C3AppContext",
    "RunConfig",
    "RunOutcome",
    "Variant",
    "run_variant_suite",
    "run_with_recovery",
]
