"""Run-level configuration: variants, intervals, simulator knobs.

:class:`Variant` captures the four build configurations of the paper's
evaluation (Section 6.2):

========  ==========================================  =======================
Variant   Paper name                                  Configuration
========  ==========================================  =======================
V0        "Unmodified Program"                        no piggyback, no
                                                      protocol, no checkpoints
V1        "Using Protocol Layer, No Checkpoints"      piggyback + protocol
                                                      layer, no waves
V2        "Checkpointing, No Application State"       full protocol, app
                                                      state omitted
V3        "Full Checkpoints"                          everything
========  ==========================================  =======================
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigError
from repro.protocol.layer import C3Config
from repro.protocol.stages.registry import StackSpec, variant_stack
from repro.simmpi.clock import CostModel


class Variant(enum.Enum):
    UNMODIFIED = "unmodified"
    PIGGYBACK = "piggyback"
    NO_APP_STATE = "no-app-state"
    FULL = "full"

    @classmethod
    def coerce(cls, value: "Variant | str") -> "Variant":
        """Accept a :class:`Variant` or its string spelling.

        Strings match either the enum value (``"no-app-state"``) or the
        member name in any case (``"NO_APP_STATE"``, ``"full"``) —
        mirroring how ``Session.run`` accepts registered app names in
        place of app objects.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value)
            except ValueError:
                try:
                    return cls[value.upper().replace("-", "_")]
                except KeyError:
                    known = ", ".join(v.value for v in cls)
                    raise ConfigError(
                        f"unknown variant {value!r}; known: {known}"
                    ) from None
        raise ConfigError(f"not a variant: {value!r}")

    @property
    def paper_name(self) -> str:
        return {
            Variant.UNMODIFIED: "Unmodified Program",
            Variant.PIGGYBACK: "Using Protocol Layer, No Checkpoints",
            Variant.NO_APP_STATE: "Checkpointing, No Application State",
            Variant.FULL: "Full Checkpoints",
        }[self]


@dataclass
class RunConfig:
    """Everything needed to execute one application under the driver."""

    nprocs: int
    seed: int = 0
    variant: Variant = Variant.FULL
    #: Explicit stage-stack name (overrides the variant→stack mapping).
    #: Any name registered with :func:`repro.protocol.register_stack`
    #: works — this is how custom user-defined variants are run.
    stack: Optional[str] = None
    #: Virtual-time distance between checkpoint waves (paper: 30 s).
    checkpoint_interval: Optional[float] = 0.030
    codec: str = "packed"
    storage_path: Optional[str] = None
    #: Checkpoint-storage engine knobs (see :mod:`repro.ckpt`): chunk
    #: compression codec ("none", "zlib", "lzma", or anything registered
    #: with :func:`repro.ckpt.register_chunk_codec`), …
    ckpt_codec: str = "none"
    #: … incremental snapshots (dedupe chunks against prior generations), …
    ckpt_incremental: bool = True
    #: … retention (keep the newest K generations, plus every Nth epoch —
    #: keep_last >= 2 enables fallback to generation N-1 when the newest
    #: committed generation is torn or corrupt), …
    ckpt_keep_last: int = 1
    ckpt_keep_every: Optional[int] = None
    #: … and the content-addressing granularity.
    ckpt_chunk_size: int = 65536
    max_restarts: int = 16
    #: Execution core for the simulated ranks: ``"coop"`` (default) runs
    #: every rank as a resumable generator on one thread; ``"threads"``
    #: keeps the historical thread-per-rank baton passing.  Outcomes are
    #: bit-identical; coop avoids per-switch thread handoffs and scales to
    #: thousands of ranks.  Applications whose ``main`` is plain
    #: synchronous code (no generator form, no precompiled unit) fall back
    #: to threads automatically.
    sim_core: str = "coop"
    sched_policy: str = "random"
    ordering: str = "per_tag_fifo"
    base_delay: float = 5e-6
    jitter: float = 20e-6
    detector_timeout: float = 0.25
    cost_model: CostModel = field(default_factory=CostModel)
    max_slices: int = 20_000_000
    #: Static verification (:mod:`repro.check`) before the run: ``"off"``
    #: (default), ``"warn"`` (report findings, run anyway) or ``"error"``
    #: (refuse to run an app with error-severity findings).  The
    #: ``check=`` argument of :meth:`repro.Session.run` overrides this.
    check: str = "off"
    #: Arm the :mod:`repro.trace` event bus for this run.  When False
    #: (default) no recorder exists and every emission site is a single
    #: attribute read; when True the outcome carries a
    #: :class:`~repro.trace.TraceRecorder` in ``RunOutcome.trace``.
    trace: bool = False
    #: Ring-buffer capacity for the recorder; ``None`` keeps every event
    #: (what ``repro-trace record`` uses for full exports).
    trace_buffer: Optional[int] = 65536

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ConfigError("max_restarts must be >= 0")
        if self.sim_core not in ("threads", "coop"):
            raise ConfigError(
                f"sim_core must be 'threads' or 'coop', got {self.sim_core!r}"
            )
        if self.check not in ("off", "warn", "error"):
            raise ConfigError(
                f"check must be 'off', 'warn' or 'error', got {self.check!r}"
            )
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ConfigError("checkpoint_interval must be positive or None")
        if self.ckpt_keep_last < 1:
            raise ConfigError("ckpt_keep_last must be >= 1")
        if self.ckpt_keep_every is not None and self.ckpt_keep_every < 1:
            raise ConfigError("ckpt_keep_every must be >= 1 or None")
        if self.ckpt_chunk_size < 1:
            raise ConfigError("ckpt_chunk_size must be positive")
        if self.trace_buffer is not None and self.trace_buffer < 1:
            raise ConfigError("trace_buffer must be >= 1 or None")

    def stack_spec(self) -> StackSpec:
        """The declared stage stack for this run.

        ``stack`` (a registered stack name) wins when set; otherwise the
        variant maps onto its canonical V0–V3 stack.
        """
        if self.stack is not None:
            return variant_stack(self.stack)
        return variant_stack(_VARIANT_STACK_NAMES[self.variant])

    def c3_config(self) -> C3Config:
        """Deprecated: derive the protocol-layer configuration.

        The boolean-flag ``C3Config`` is now itself derived from the stage
        stack; prefer :meth:`stack_spec` (and
        ``stack_spec().c3_config(self)`` where the legacy object is still
        needed).
        """
        warnings.warn(
            "RunConfig.c3_config() is deprecated; variants are declared "
            "stage stacks now — use RunConfig.stack_spec()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.stack_spec().c3_config(self)

    @property
    def checkpointing_active(self) -> bool:
        return "checkpoint" in self.stack_spec().stages and (
            self.checkpoint_interval is not None
        )


#: Canonical variant → stack-name mapping (Section 6.2).
_VARIANT_STACK_NAMES = {
    Variant.UNMODIFIED: "V0",
    Variant.PIGGYBACK: "V1",
    Variant.NO_APP_STATE: "V2",
    Variant.FULL: "V3",
}
