"""Mid-checkpoint crashes: a process dies *while writing* its checkpoint.

The storage engine's two-phase commit must make this failure mode
indistinguishable from a plain kill: the torn generation is never
published, so recovery restarts from the previous committed generation
(or from scratch when the first wave was the casualty) and produces the
exact failure-free answer.

Variant coverage mirrors what each variant can express:

* V3 (FULL) — the crash tears generation N mid-write; recovery restarts
  from committed generation N-1 with full application state.
* V2 (NO_APP_STATE) — checkpoints carry no application state, so manual
  apps can only restart *from scratch*; the crash is injected during the
  first wave (nothing committed yet) and the full restart must still be
  answer-identical and unpolluted by the torn write.
* V1 (PIGGYBACK) — no checkpoint waves exist, so the armed crash can
  never fire; the run must complete failure-free.
"""

import pytest

from repro.runtime.config import RunConfig, Variant
from repro.runtime.driver import run_with_recovery
from repro.simmpi import SUM
from repro.simmpi.failures import FailureSchedule
from repro.statesave.storage import Storage


def ring_app(n_iters=120):
    def app(ctx):
        state = ctx.checkpointable_state(lambda: {"i": 0, "acc": 0.0})
        while state["i"] < n_iters:
            i = state["i"]
            right = (ctx.rank + 1) % ctx.size
            left = (ctx.rank - 1) % ctx.size
            ctx.mpi.send(float(i), right, tag=1)
            incoming = ctx.mpi.recv(source=left, tag=1)
            state["acc"] += ctx.mpi.allreduce(incoming, SUM)
            state["i"] += 1
            ctx.potential_checkpoint()
        return round(state["acc"], 10)

    return app


BASE = dict(
    nprocs=4, seed=31, checkpoint_interval=0.0025, detector_timeout=0.03,
    ckpt_keep_last=2,
)


@pytest.fixture(scope="module")
def gold():
    return run_with_recovery(ring_app(), RunConfig(**BASE))


class TestFullVariant:
    def test_torn_write_recovers_from_previous_generation(self, gold):
        out = run_with_recovery(
            ring_app(), RunConfig(**BASE),
            failures=FailureSchedule.during_checkpoint(rank=2, epoch=2),
        )
        assert out.results == gold.results
        assert out.restarts == 1
        # The torn generation-2 write was never published: recovery came
        # from the previously committed generation, epoch 1.
        assert out.attempts[1].started_from_epoch == 1

    def test_corrupt_manifest_is_rejected_at_restart(self, gold):
        out = run_with_recovery(
            ring_app(), RunConfig(**BASE),
            failures=FailureSchedule.during_checkpoint(
                rank=1, epoch=2, corrupt_manifest=True
            ),
        )
        assert out.results == gold.results
        assert out.attempts[1].started_from_epoch == 1

    @pytest.mark.parametrize("victim", [0, 3])
    def test_initiator_and_last_rank_victims(self, gold, victim):
        out = run_with_recovery(
            ring_app(), RunConfig(**BASE),
            failures=FailureSchedule.during_checkpoint(rank=victim, epoch=2),
        )
        assert out.results == gold.results

    def test_crash_during_first_wave_restarts_from_scratch(self, gold):
        out = run_with_recovery(
            ring_app(), RunConfig(**BASE),
            failures=FailureSchedule.during_checkpoint(rank=2, epoch=1),
        )
        assert out.results == gold.results
        assert out.attempts[1].started_from_epoch is None

    def test_laplace_precompiled_app(self):
        from repro.apps import laplace

        params = laplace.LaplaceParams(n=32, iterations=140)
        cfg = RunConfig(**BASE)
        gold = run_with_recovery(laplace.build(params), cfg)
        out = run_with_recovery(
            laplace.build(params), cfg,
            failures=FailureSchedule.during_checkpoint(rank=1, epoch=2),
        )
        assert out.results == gold.results
        assert out.restarts == 1


class TestOtherVariants:
    def test_v2_first_wave_crash_restarts_clean(self, gold):
        cfg = RunConfig(variant=Variant.NO_APP_STATE, **BASE)
        v2_gold = run_with_recovery(ring_app(), cfg)
        out = run_with_recovery(
            ring_app(), cfg,
            failures=FailureSchedule.during_checkpoint(rank=1, epoch=1),
        )
        assert out.results == v2_gold.results == gold.results
        assert out.restarts == 1
        assert out.attempts[1].started_from_epoch is None

    def test_v1_has_no_waves_so_crash_never_fires(self, gold):
        cfg = RunConfig(variant=Variant.PIGGYBACK, **BASE)
        out = run_with_recovery(
            ring_app(), cfg,
            failures=FailureSchedule.during_checkpoint(rank=1, epoch=1),
        )
        assert out.results == gold.results
        assert out.restarts == 0

    def test_unfired_crash_does_not_leak_into_next_run(self, gold):
        """A crash left unfired by one run (V1 takes no checkpoints) must
        not stay armed on a reused storage and kill a later run."""
        storage = Storage(None, keep_last=2)
        run_with_recovery(
            ring_app(), RunConfig(variant=Variant.PIGGYBACK, **BASE),
            storage=storage,
            failures=FailureSchedule.during_checkpoint(rank=2, epoch=2),
        )
        out = run_with_recovery(ring_app(), RunConfig(**BASE), storage=storage)
        assert out.restarts == 0
        assert out.results == gold.results


class TestOlderGenerationRestart:
    def test_corruption_between_runs_falls_back_to_generation_n_minus_1(
        self, tmp_path, gold
    ):
        """Bit rot *after* a successful run: the newest committed
        generation fails validation at the next restart, and the run
        resumes from the retained N-1 — same final answer."""
        cfg = RunConfig(storage_path=str(tmp_path / "stable"), **BASE)
        storage = Storage.from_config(cfg)
        first = run_with_recovery(ring_app(), cfg, storage=storage)
        assert first.results == gold.results
        newest = storage.committed_epoch()
        assert newest is not None and newest >= 2
        storage.store.corrupt_manifest(f"rank0/state", newest)
        assert storage.committed_epoch() == newest - 1
        # A fresh Storage over the same directory reaches the same verdict
        # (the fallback is a property of the bytes, not of the process).
        reopened = Storage.from_config(cfg)
        assert reopened.committed_epoch() == newest - 1
        second = run_with_recovery(ring_app(), cfg, storage=reopened)
        assert second.results == gold.results
        assert second.attempts[0].started_from_epoch == newest - 1
