"""Failure in the middle of a checkpoint wave: the partially written epoch
must never be used for recovery (commit discipline, paper Section 4.1
phase 4 + our storage commit record)."""


from repro.protocol import C3Config, C3Layer
from repro.runtime import RunConfig, run_with_recovery
from repro.simmpi import (
    SUM,
    FailureSchedule,
    KillEvent,
    SimConfig,
    Simulator,
)
from repro.statesave import Storage


class TestPartialWaveIgnored:
    def test_uncommitted_epoch_left_on_storage_is_not_used(self):
        """Rank 0 takes its local epoch-1 checkpoint, but the wave can never
        complete (rank 1 refuses to reach a potential checkpoint before the
        injected failure).  Storage then holds rank 0's epoch-1 state with
        no commit record — recovery must restart from scratch."""
        storage = Storage()

        def main(ctx):
            layer = C3Layer(ctx.comm, C3Config(save_app_state=False), storage)
            if ctx.rank == 0:
                layer.request_checkpoint_now()
            for i in range(400):
                layer.send(i, 1 - ctx.rank, tag=1)
                layer.recv(source=1 - ctx.rank, tag=1)
                if ctx.rank == 0:
                    layer.potential_checkpoint()
            return layer.state.epoch

        sim = Simulator(
            SimConfig(nprocs=2, seed=4, detector_timeout=0.02),
            main,
            failures=FailureSchedule.single(0.004, 1),
        )
        result = sim.run()
        assert result.failed
        # Rank 0 wrote its local checkpoint ...
        data = storage.read_state(0, 1)
        assert data.epoch == 1
        # ... but the global checkpoint was never committed.
        assert storage.committed_epoch() is None

    def test_driver_restarts_fresh_after_mid_wave_failure(self):
        """End-to-end: failure while the first wave is still collecting —
        the second attempt starts from scratch and still gets the right
        answer."""
        def app(ctx):
            state = ctx.checkpointable_state(lambda: {"i": 0, "acc": 0})
            while state["i"] < 120:
                state["acc"] += ctx.mpi.allreduce(state["i"], SUM)
                state["i"] += 1
                ctx.potential_checkpoint()
            return state["acc"]

        cfg = RunConfig(nprocs=3, seed=6, checkpoint_interval=0.0015,
                        detector_timeout=0.03)
        gold = run_with_recovery(app, cfg)
        first_commit = None
        # Find a kill time squarely inside the first wave: just after the
        # interval elapses (wave initiation) but well before it can commit.
        out = run_with_recovery(
            app, cfg, failures=FailureSchedule.single(0.00155, 2)
        )
        assert out.results == gold.results

    def test_progress_across_repeated_mid_run_failures(self):
        """Each failed attempt still advances the recovery line: later
        attempts restart from the same or later epochs, never earlier."""
        def app(ctx):
            state = ctx.checkpointable_state(lambda: {"i": 0, "acc": 0})
            while state["i"] < 200:
                state["acc"] += ctx.mpi.allreduce(1, SUM)
                state["i"] += 1
                ctx.potential_checkpoint()
            return state["acc"]

        cfg = RunConfig(nprocs=3, seed=2, checkpoint_interval=0.002,
                        detector_timeout=0.03)
        out = run_with_recovery(
            app, cfg,
            failures=FailureSchedule(
                [KillEvent(0.006, 0), KillEvent(0.008, 1), KillEvent(0.010, 2)]
            ),
        )
        epochs = [a.started_from_epoch or 0 for a in out.attempts]
        assert epochs == sorted(epochs), f"recovery line moved backwards: {epochs}"
        assert epochs[-1] >= 1, "no forward progress despite checkpoints"
        assert out.results == [600 * 3 // 3 * 1 for _ in range(3)] or len(set(out.results)) == 1
