"""Adversarial end-to-end recovery: sweep kill times across the whole run,
vary victims, orderings, codecs and process counts, and require the
recovered result to equal the failure-free result every single time.

This is the strongest test a checkpointing system can face: if any protocol
rule (late-message logging, early-ID suppression, replay matching,
collective-result logging, barrier alignment) is wrong for *any* reachable
interleaving, some kill time in the sweep exposes it as a wrong answer,
a deadlock, or a protocol assertion.
"""

import pytest

from repro.apps import laplace, neurosys
from repro.runtime import RunConfig, run_with_recovery
from repro.simmpi import SUM, FailureSchedule, KillEvent


def mixed_traffic_app(n_iters=160):
    """Exercises p2p (multiple tags), isend/irecv, collectives, barriers and
    checkpointed randomness in one loop.

    Barriers sit at the top of the iteration: a barrier is a potential
    checkpoint location (the paper's Section 4.5 epoch alignment can force a
    local checkpoint there), so manual-state applications must keep their
    registered state resume-consistent at every barrier call — here, the
    loop-top position where the whole iteration can safely re-run.
    """

    def app(ctx):
        state = ctx.checkpointable_state(lambda: {"i": 0, "acc": 0.0})
        while state["i"] < n_iters:
            i = state["i"]
            if i % 20 == 0:
                ctx.mpi.barrier()
            right = (ctx.rank + 1) % ctx.size
            left = (ctx.rank - 1) % ctx.size
            req = ctx.mpi.isend(float(i), right, tag=1)
            ctx.mpi.send(ctx.rng.random(), right, tag=2)
            rreq = ctx.mpi.irecv(source=left, tag=1)
            noise = ctx.mpi.recv(source=left, tag=2)
            base = ctx.mpi.wait(rreq)
            ctx.mpi.wait(req)
            state["acc"] += ctx.mpi.allreduce(base + noise, SUM)
            state["i"] += 1
            ctx.potential_checkpoint()
        return round(state["acc"], 10)

    return app


BASE = dict(nprocs=4, seed=31, checkpoint_interval=0.0025, detector_timeout=0.03)


@pytest.fixture(scope="module")
def gold_mixed():
    return run_with_recovery(mixed_traffic_app(), RunConfig(**BASE))


class TestKillTimeSweep:
    @pytest.mark.parametrize("fraction", [0.05, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9])
    def test_kill_anywhere_recovers_exactly(self, gold_mixed, fraction):
        virtual_end = gold_mixed.attempts[0].virtual_time
        kill_at = virtual_end * fraction
        victim = int(fraction * 100) % 4
        out = run_with_recovery(
            mixed_traffic_app(), RunConfig(**BASE),
            failures=FailureSchedule.single(kill_at, victim),
        )
        assert out.results == gold_mixed.results, (
            f"divergence for kill at {fraction:.0%} of run, victim {victim}"
        )

    def test_kill_initiator(self, gold_mixed):
        out = run_with_recovery(
            mixed_traffic_app(), RunConfig(**BASE),
            failures=FailureSchedule.single(0.01, 0),
        )
        assert out.results == gold_mixed.results

    def test_cascade_of_failures(self, gold_mixed):
        out = run_with_recovery(
            mixed_traffic_app(), RunConfig(**BASE),
            failures=FailureSchedule(
                [KillEvent(0.003, 1), KillEvent(0.006, 2),
                 KillEvent(0.009, 3), KillEvent(0.012, 0)]
            ),
        )
        assert out.results == gold_mixed.results


class TestConfigurationMatrix:
    @pytest.mark.parametrize("ordering", ["fifo", "per_tag_fifo", "random"])
    @pytest.mark.parametrize("codec", ["packed", "full"])
    def test_ordering_codec_matrix(self, ordering, codec):
        cfg = RunConfig(ordering=ordering, codec=codec, **BASE)
        gold = run_with_recovery(mixed_traffic_app(100), cfg)
        out = run_with_recovery(
            mixed_traffic_app(100), cfg,
            failures=FailureSchedule.single(0.006, 2),
        )
        assert out.results == gold.results

    @pytest.mark.parametrize("nprocs", [2, 3, 5])
    def test_process_counts(self, nprocs):
        base = dict(BASE)
        base["nprocs"] = nprocs
        cfg = RunConfig(**base)
        gold = run_with_recovery(mixed_traffic_app(100), cfg)
        out = run_with_recovery(
            mixed_traffic_app(100), cfg,
            failures=FailureSchedule.single(0.005, nprocs - 1),
        )
        assert out.results == gold.results


class TestRealApplicationsUnderSweep:
    @pytest.mark.parametrize("fraction", [0.2, 0.5, 0.8])
    def test_laplace_sweep(self, fraction):
        params = laplace.LaplaceParams(n=32, iterations=80)
        cfg = RunConfig(**BASE)
        gold = run_with_recovery(laplace.build(params), cfg)
        kill_at = gold.attempts[0].virtual_time * fraction
        out = run_with_recovery(
            laplace.build(params), cfg,
            failures=FailureSchedule.single(kill_at, 2),
        )
        assert out.results == gold.results

    @pytest.mark.parametrize("fraction", [0.3, 0.7])
    def test_neurosys_sweep(self, fraction):
        params = neurosys.NeurosysParams(grid=4, iterations=40)
        cfg = RunConfig(**BASE)
        gold = run_with_recovery(neurosys.build(params), cfg)
        kill_at = gold.attempts[0].virtual_time * fraction
        out = run_with_recovery(
            neurosys.build(params), cfg,
            failures=FailureSchedule.single(kill_at, 1),
        )
        assert out.results == gold.results


class TestSeededFuzz:
    @pytest.mark.parametrize("master_seed", range(6))
    def test_random_failure_random_interleaving(self, master_seed):
        """Randomised single-failure runs under the random transport: the
        reproducible fuzzing loop that shook out interleaving bugs."""
        base = dict(BASE)
        base["seed"] = 100 + master_seed
        base["ordering"] = "random"
        cfg = RunConfig(**base)
        gold = run_with_recovery(mixed_traffic_app(80), cfg)
        sched = FailureSchedule.random_single(
            master_seed, 4, (0.001, max(0.002, gold.attempts[0].virtual_time * 0.9))
        )
        out = run_with_recovery(mixed_traffic_app(80), cfg, failures=sched)
        assert out.results == gold.results
