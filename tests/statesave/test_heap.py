"""Managed heap (HOS) tests: allocation discipline and aliasing."""

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HeapError
from repro.statesave.heap import ManagedHeap


class TestAllocation:
    def test_alloc_and_get(self):
        heap = ManagedHeap()
        obj = heap.alloc("node", {"v": 1})
        assert heap.get("node") is obj
        assert "node" in heap

    def test_alloc_array(self):
        heap = ManagedHeap()
        arr = heap.alloc_array("grid", (4, 4), fill=2.5)
        assert arr.shape == (4, 4)
        assert float(arr[0, 0]) == 2.5

    def test_anonymous_names_unique(self):
        heap = ManagedHeap()
        heap.alloc(None, 1)
        heap.alloc(None, 2)
        assert heap.live_count == 2

    def test_double_alloc_rejected(self):
        heap = ManagedHeap()
        heap.alloc("x", 1)
        with pytest.raises(HeapError):
            heap.alloc("x", 2)

    def test_free(self):
        heap = ManagedHeap()
        heap.alloc("x", 1)
        heap.free("x")
        assert "x" not in heap
        assert heap.frees == 1

    def test_double_free_rejected(self):
        heap = ManagedHeap()
        heap.alloc("x", 1)
        heap.free("x")
        with pytest.raises(HeapError):
            heap.free("x")

    def test_get_missing_rejected(self):
        with pytest.raises(HeapError):
            ManagedHeap().get("ghost")

    def test_total_bytes_counts_arrays(self):
        heap = ManagedHeap()
        heap.alloc_array("a", (100,))
        assert heap.total_bytes() >= 800


class TestAliasing:
    def test_pointer_validity_across_restore(self):
        """The paper's Section 5.1.4 guarantee, Python form: references
        from 'stack' data into heap objects stay valid after restore when
        everything travels in one pickle."""
        heap = ManagedHeap()
        grid = heap.alloc_array("grid", (3,))
        stack_frame = {"alias": grid}
        blob = pickle.dumps({"heap": heap.snapshot(), "frame": stack_frame})
        restored = pickle.loads(blob)
        new_heap = ManagedHeap()
        new_heap.restore(restored["heap"])
        assert restored["frame"]["alias"] is new_heap.get("grid")
        new_heap.get("grid")[0] = 42.0
        assert restored["frame"]["alias"][0] == 42.0

    def test_heap_to_heap_references(self):
        heap = ManagedHeap()
        a = heap.alloc("a", [1, 2])
        heap.alloc("b", {"points_to": a})
        blob = pickle.dumps(heap.snapshot())
        new_heap = ManagedHeap()
        new_heap.restore(pickle.loads(blob))
        assert new_heap.get("b")["points_to"] is new_heap.get("a")

    def test_anon_counter_restored(self):
        heap = ManagedHeap()
        heap.alloc(None, "x")
        snap = pickle.loads(pickle.dumps(heap.snapshot()))
        new_heap = ManagedHeap()
        new_heap.restore(snap)
        new_heap.alloc(None, "y")  # must not collide with restored anon name
        assert new_heap.live_count == 2


@given(st.lists(st.sampled_from(["alloc", "free"]), max_size=60))
def test_alloc_free_invariant(ops):
    """live_count always equals allocations minus frees."""
    heap = ManagedHeap()
    live = []
    for op in ops:
        if op == "alloc" or not live:
            live.append(heap.alloc(None, object()))
        else:
            name = next(iter(dict(heap.live_objects())))
            heap.free(name)
            live.pop()
    assert heap.live_count == heap.allocations - heap.frees
