"""Stable storage: commit discipline, GC, corruption resistance."""

import os

import pytest

from repro.errors import StorageError
from repro.statesave.format import CheckpointData
from repro.statesave.storage import Storage
from repro.util.serialization import FrameCorruptError


def ckpt(rank=0, epoch=1):
    return CheckpointData(rank=rank, epoch=epoch, protocol={"epoch": epoch})


@pytest.fixture(params=["memory", "disk"])
def storage(request, tmp_path):
    if request.param == "memory":
        return Storage(None)
    return Storage(str(tmp_path / "stable"))


class TestBasicIO:
    def test_state_roundtrip(self, storage):
        storage.write_state(0, 1, ckpt())
        data = storage.read_state(0, 1)
        assert data.rank == 0 and data.epoch == 1

    def test_log_roundtrip(self, storage):
        storage.write_log(2, 3, {"late": []})
        assert storage.read_log(2, 3) == {"late": []}

    def test_missing_object_raises(self, storage):
        with pytest.raises(StorageError):
            storage.read_state(9, 9)

    def test_bytes_accounted(self, storage):
        storage.write_state(0, 1, ckpt())
        assert storage.bytes_written > 0
        assert storage.writes == 1


class TestCommit:
    def test_no_commit_initially(self, storage):
        assert storage.committed_epoch() is None

    def test_commit_roundtrip(self, storage):
        storage.commit(4, 1.25)
        assert storage.committed_epoch() == 4

    def test_recommit_replaces(self, storage):
        storage.commit(1, 0.0)
        storage.commit(2, 1.0)
        assert storage.committed_epoch() == 2

    def test_has_complete_epoch(self, storage):
        for rank in range(3):
            storage.write_state(rank, 1, ckpt(rank))
        assert not storage.has_complete_epoch(3, 1)  # logs missing
        for rank in range(3):
            storage.write_log(rank, 1, {})
        assert storage.has_complete_epoch(3, 1)


class TestGC:
    def test_gc_removes_stale_epochs(self, storage):
        for epoch in (1, 2, 3):
            for rank in range(2):
                storage.write_state(rank, epoch, ckpt(rank, epoch))
                storage.write_log(rank, epoch, {})
        removed = storage.gc(2, keep_epoch=3)
        assert removed == 8
        assert storage.has_complete_epoch(2, 3)
        with pytest.raises(StorageError):
            storage.read_state(0, 2)

    def test_gc_keeps_commit_record(self, storage):
        storage.commit(3, 0.0)
        storage.write_state(0, 3, ckpt(0, 3))
        storage.gc(1, keep_epoch=3)
        assert storage.committed_epoch() == 3


class TestCorruption:
    def test_bitflip_detected_on_disk(self, tmp_path):
        storage = Storage(str(tmp_path))
        storage.write_state(0, 1, ckpt())
        path = os.path.join(str(tmp_path), "rank0", "epoch1.state")
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(FrameCorruptError):
            storage.read_state(0, 1)

    def test_truncation_detected_on_disk(self, tmp_path):
        storage = Storage(str(tmp_path))
        storage.write_state(0, 1, ckpt())
        path = os.path.join(str(tmp_path), "rank0", "epoch1.state")
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        with pytest.raises(FrameCorruptError):
            storage.read_state(0, 1)

    def test_overwrite_is_atomic_no_residue(self, tmp_path):
        storage = Storage(str(tmp_path))
        storage.write_state(0, 1, ckpt())
        storage.write_state(0, 1, ckpt())
        files = os.listdir(os.path.join(str(tmp_path), "rank0"))
        assert files == ["epoch1.state"]


class TestWipe:
    def test_wipe(self, storage):
        storage.write_state(0, 1, ckpt())
        storage.commit(1, 0.0)
        storage.wipe()
        assert storage.committed_epoch() is None


class TestCheckpointData:
    def test_describe(self):
        data = CheckpointData(
            rank=1, epoch=2, protocol=None,
            early_ids={0: [1, 2]}, app_state={"x": 1},
        )
        text = data.describe()
        assert "rank=1" in text and "early=2" in text and "app=yes" in text
