"""Stable storage: commit discipline, GC, corruption resistance."""

import os

import pytest

from repro.errors import ManifestCorruptError, StorageError
from repro.statesave.format import CheckpointData
from repro.statesave.storage import Storage
from repro.util.serialization import FrameCorruptError


def ckpt(rank=0, epoch=1):
    return CheckpointData(rank=rank, epoch=epoch, protocol={"epoch": epoch})


@pytest.fixture(params=["memory", "disk"])
def storage(request, tmp_path):
    if request.param == "memory":
        return Storage(None)
    return Storage(str(tmp_path / "stable"))


class TestBasicIO:
    def test_state_roundtrip(self, storage):
        storage.write_state(0, 1, ckpt())
        data = storage.read_state(0, 1)
        assert data.rank == 0 and data.epoch == 1

    def test_log_roundtrip(self, storage):
        storage.write_log(2, 3, {"late": []})
        assert storage.read_log(2, 3) == {"late": []}

    def test_missing_object_raises(self, storage):
        with pytest.raises(StorageError):
            storage.read_state(9, 9)

    def test_bytes_accounted(self, storage):
        storage.write_state(0, 1, ckpt())
        assert storage.bytes_written > 0
        assert storage.writes == 1


class TestCommit:
    def test_no_commit_initially(self, storage):
        assert storage.committed_epoch() is None

    def test_commit_roundtrip(self, storage):
        storage.commit(4, 1.25)
        assert storage.committed_epoch() == 4

    def test_recommit_replaces(self, storage):
        storage.commit(1, 0.0)
        storage.commit(2, 1.0)
        assert storage.committed_epoch() == 2

    def test_has_complete_epoch(self, storage):
        for rank in range(3):
            storage.write_state(rank, 1, ckpt(rank))
        assert not storage.has_complete_epoch(3, 1)  # logs missing
        for rank in range(3):
            storage.write_log(rank, 1, {})
        assert storage.has_complete_epoch(3, 1)


class TestGC:
    def test_gc_removes_stale_epochs(self, storage):
        for epoch in (1, 2, 3):
            for rank in range(2):
                storage.write_state(rank, epoch, ckpt(rank, epoch))
                storage.write_log(rank, epoch, {})
        removed = storage.gc(2, keep_epoch=3)
        assert removed == 8
        assert storage.has_complete_epoch(2, 3)
        with pytest.raises(StorageError):
            storage.read_state(0, 2)

    def test_gc_keeps_commit_record(self, storage):
        storage.commit(3, 0.0)
        storage.write_state(0, 3, ckpt(0, 3))
        storage.gc(1, keep_epoch=3)
        assert storage.committed_epoch() == 3


def _chunk_files(root):
    out = []
    for dirpath, _dirs, files in os.walk(os.path.join(root, "objects")):
        out.extend(os.path.join(dirpath, name) for name in files)
    return sorted(out)


class TestCorruption:
    def test_chunk_bitflip_detected_on_disk(self, tmp_path):
        storage = Storage(str(tmp_path))
        storage.write_state(0, 1, ckpt())
        (path,) = _chunk_files(str(tmp_path))
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(StorageError):
            storage.read_state(0, 1)

    def test_chunk_truncation_detected_on_disk(self, tmp_path):
        storage = Storage(str(tmp_path))
        storage.write_state(0, 1, ckpt())
        (path,) = _chunk_files(str(tmp_path))
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        with pytest.raises(StorageError):
            storage.read_state(0, 1)

    def test_manifest_bitflip_detected_on_disk(self, tmp_path):
        storage = Storage(str(tmp_path))
        storage.write_state(0, 1, ckpt())
        path = os.path.join(
            str(tmp_path), "manifests", "rank0", "state", "gen00000001.mft"
        )
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(FrameCorruptError):
            storage.read_state(0, 1)

    def test_manifest_checksum_rejected(self, storage):
        """A manifest whose frame is intact but whose inner checksum no
        longer matches its contents must be rejected, not trusted."""
        storage.write_state(0, 1, ckpt())
        storage.store.corrupt_manifest("rank0/state", 1)
        with pytest.raises(ManifestCorruptError):
            storage.read_state(0, 1)

    def test_overwrite_is_atomic_no_residue(self, tmp_path):
        storage = Storage(str(tmp_path))
        storage.write_state(0, 1, ckpt())
        storage.write_state(0, 1, ckpt())
        leftovers = [
            name
            for _dir, _dirs, files in os.walk(str(tmp_path))
            for name in files
            if ".tmp." in name
        ]
        assert leftovers == []
        assert storage.read_state(0, 1).epoch == 1


class TestCommitFallback:
    """Generation N torn or corrupt => recovery restarts from N-1."""

    def _two_committed_generations(self, storage, nprocs=2):
        for epoch in (1, 2):
            for rank in range(nprocs):
                storage.write_state(rank, epoch, ckpt(rank, epoch))
                storage.write_log(rank, epoch, {"epoch": epoch})
            storage.commit(epoch, float(epoch), nprocs=nprocs)
        return storage

    @pytest.fixture(params=["memory", "disk"])
    def deep_storage(self, request, tmp_path):
        path = None if request.param == "memory" else str(tmp_path / "stable")
        return Storage(path, keep_last=2)

    def test_newest_commit_wins_when_valid(self, deep_storage):
        self._two_committed_generations(deep_storage)
        assert deep_storage.committed_epoch() == 2

    def test_corrupt_manifest_falls_back_to_previous_generation(self, deep_storage):
        self._two_committed_generations(deep_storage)
        deep_storage.store.corrupt_manifest("rank1/state", 2)
        assert deep_storage.committed_epoch() == 1

    def test_torn_generation_falls_back_to_previous_generation(self, deep_storage):
        self._two_committed_generations(deep_storage)
        # A torn write leaves chunks but no manifest: delete the manifest.
        deep_storage.store.delete_generation("rank0/state", 2)
        assert deep_storage.committed_epoch() == 1

    def test_all_generations_corrupt_means_no_commit(self, deep_storage):
        self._two_committed_generations(deep_storage)
        for epoch in (1, 2):
            deep_storage.store.corrupt_manifest("rank0/state", epoch)
        assert deep_storage.committed_epoch() is None

    def test_unvalidatable_commit_record_skipped_once_gcd(self):
        """A commit written without nprocs (external callers) cannot be
        deep-validated; once gc has removed its generations it must fall
        through instead of steering recovery into a missing object."""
        storage = Storage(None)
        storage.write_state(0, 1, ckpt(0, 1))
        storage.write_log(0, 1, {})
        storage.commit(1, 0.0)  # no nprocs
        assert storage.committed_epoch() == 1
        storage.write_state(0, 2, ckpt(0, 2))
        storage.write_log(0, 2, {})
        storage.gc(1, keep_epoch=2)  # epoch 1 generations deleted
        assert storage.committed_epoch() is None

    def test_keep_last_one_cannot_fall_back(self):
        """The paper's keep-only-latest discipline has no N-1 to return to
        (documented behaviour, the reason ckpt_keep_last=2 exists)."""
        storage = Storage(None)  # keep_last=1
        self._two_committed_generations(storage)
        storage.gc(2, keep_epoch=2)
        storage.store.corrupt_manifest("rank0/state", 2)
        assert storage.committed_epoch() is None


class TestCheckpointCrashInjection:
    def test_after_chunks_zero_writes_nothing(self):
        from repro.errors import ProcessKilled
        from repro.simmpi.failures import FailureSchedule

        storage = Storage(None, chunk_size=64)
        storage.crash_plan = FailureSchedule.during_checkpoint(
            rank=0, epoch=1, after_chunks=0
        )
        with pytest.raises(ProcessKilled):
            storage.write_state(0, 1, ckpt())
        assert storage.store.backend.keys("objects/") == []
        assert not storage.store.has_generation("rank0/state", 1)

    def test_after_chunks_counts_persisted_chunks(self):
        from repro.errors import ProcessKilled
        from repro.simmpi.failures import FailureSchedule

        storage = Storage(None, chunk_size=64)
        storage.crash_plan = FailureSchedule.during_checkpoint(
            rank=0, epoch=1, after_chunks=2
        )
        with pytest.raises(ProcessKilled):
            storage.write_state(0, 1, ckpt())
        assert len(storage.store.backend.keys("objects/")) == 2
        assert not storage.store.has_generation("rank0/state", 1)

    def test_crash_fires_once(self):
        from repro.errors import ProcessKilled
        from repro.simmpi.failures import FailureSchedule

        storage = Storage(None)
        storage.crash_plan = FailureSchedule.during_checkpoint(rank=0, epoch=1)
        with pytest.raises(ProcessKilled):
            storage.write_state(0, 1, ckpt())
        # The next attempt's write of the same generation succeeds.
        manifest = storage.write_state(0, 1, ckpt())
        assert manifest is not None
        assert storage.read_state(0, 1).epoch == 1


class TestWipe:
    def test_wipe(self, storage):
        storage.write_state(0, 1, ckpt())
        storage.commit(1, 0.0)
        storage.wipe()
        assert storage.committed_epoch() is None


class TestCheckpointData:
    def test_describe(self):
        data = CheckpointData(
            rank=1, epoch=2, protocol=None,
            early_ids={0: [1, 2]}, app_state={"x": 1},
        )
        text = data.describe()
        assert "rank=1" in text and "early=2" in text and "app=yes" in text
