"""Globals registry tests (uses this test module as the target module)."""

import pickle

import pytest

from repro.errors import CheckpointError
from repro.statesave.globals_registry import (
    DEFAULT_REGISTRY,
    GlobalsRegistry,
    checkpointable_state,
)

# Module-level variables manipulated by the tests below.
COUNTER = 0
TABLE = {"a": 1}


class TestRegistry:
    def test_register_and_snapshot(self):
        global COUNTER
        reg = GlobalsRegistry()
        reg.register(__name__, "COUNTER")
        COUNTER = 7
        snap = reg.snapshot()
        assert snap[(__name__, "COUNTER")] == 7

    def test_restore_writes_back(self):
        global COUNTER
        reg = GlobalsRegistry()
        reg.register(__name__, "COUNTER")
        COUNTER = 3
        snap = reg.snapshot()
        COUNTER = 99
        reg.restore(snap)
        assert COUNTER == 3

    def test_unknown_attribute_rejected(self):
        with pytest.raises(CheckpointError):
            GlobalsRegistry().register(__name__, "NO_SUCH_GLOBAL")

    def test_register_idempotent(self):
        reg = GlobalsRegistry()
        reg.register(__name__, "COUNTER")
        reg.register(__name__, "COUNTER")
        assert len(reg.registered) == 1

    def test_register_many(self):
        reg = GlobalsRegistry()
        reg.register_many(__name__, ["COUNTER", "TABLE"])
        assert len(reg.registered) == 2

    def test_snapshot_picklable(self):
        global TABLE
        reg = GlobalsRegistry()
        reg.register(__name__, "TABLE")
        TABLE = {"a": 2}
        snap = pickle.loads(pickle.dumps(reg.snapshot()))
        TABLE = {}
        reg.restore(snap)
        assert TABLE == {"a": 2}

    def test_restore_registers_new_entries(self):
        """Restoring on a fresh registry re-populates its entry list."""
        reg = GlobalsRegistry()
        reg.register(__name__, "COUNTER")
        snap = reg.snapshot()
        fresh = GlobalsRegistry()
        fresh.restore(snap)
        assert fresh.registered == reg.registered


TALLY = {"total": 0.0}


def _tally_app(ctx):
    """Accumulates allreduce results into a registered module global."""
    from repro.simmpi import SUM

    state = ctx.checkpointable_state(lambda: {"i": 0})
    while state["i"] < 40:
        ctx.potential_checkpoint()
        x = ctx.mpi.allreduce(1.0, SUM)
        if ctx.rank == 0:
            TALLY["total"] += x
        state["i"] += 1
    return state["i"]


class TestRuntimeRoundTrip:
    """Registered globals ride along in checkpoints: a recovered run must
    end with the same global value as the failure-free run (without the
    restore, replayed iterations double-count into the global)."""

    def test_registered_global_survives_recovery(self):
        from repro.runtime import RunConfig, run_with_recovery
        from repro.simmpi import FailureSchedule

        before = list(DEFAULT_REGISTRY._entries)
        try:
            checkpointable_state("TALLY", module=__name__)
            cfg = RunConfig(nprocs=2, seed=5, checkpoint_interval=0.0005,
                            detector_timeout=0.04)
            TALLY["total"] = 0.0
            gold = run_with_recovery(_tally_app, cfg)
            gold_total = TALLY["total"]
            assert gold_total == 80.0  # 40 iterations x allreduce of 1.0 x 2
            assert gold.checkpoints_committed >= 1

            TALLY["total"] = 0.0
            rec = run_with_recovery(
                _tally_app, cfg,
                failures=FailureSchedule.single(gold.total_virtual_time * 0.5, 1),
            )
            assert len(rec.attempts) == 2
            assert rec.results == gold.results
            assert TALLY["total"] == gold_total
        finally:
            DEFAULT_REGISTRY._entries = before
            TALLY["total"] = 0.0


class TestCheckpointableState:
    """The module-level declaration ``repro-check --fix`` emits."""

    def test_registers_in_the_calling_module(self):
        reg = GlobalsRegistry()
        checkpointable_state("COUNTER", "TABLE", registry=reg)
        assert (__name__, "COUNTER") in reg.registered
        assert (__name__, "TABLE") in reg.registered

    def test_module_override(self):
        reg = GlobalsRegistry()
        checkpointable_state("COUNTER", module=__name__, registry=reg)
        assert reg.registered == [(__name__, "COUNTER")]

    def test_defaults_to_the_process_registry(self):
        before = list(DEFAULT_REGISTRY.registered)
        try:
            checkpointable_state("COUNTER")
            assert (__name__, "COUNTER") in DEFAULT_REGISTRY.registered
        finally:
            DEFAULT_REGISTRY._entries = before

    def test_unknown_name_rejected(self):
        with pytest.raises(CheckpointError):
            checkpointable_state("NO_SUCH_GLOBAL", registry=GlobalsRegistry())

    def test_registered_state_round_trips(self):
        global TABLE
        reg = GlobalsRegistry()
        checkpointable_state("TABLE", registry=reg)
        TABLE = {"a": 5}
        snap = reg.snapshot()
        TABLE = {}
        reg.restore(snap)
        assert TABLE == {"a": 5}
