"""Globals registry tests (uses this test module as the target module)."""

import pickle

import pytest

from repro.errors import CheckpointError
from repro.statesave.globals_registry import GlobalsRegistry

# Module-level variables manipulated by the tests below.
COUNTER = 0
TABLE = {"a": 1}


class TestRegistry:
    def test_register_and_snapshot(self):
        global COUNTER
        reg = GlobalsRegistry()
        reg.register(__name__, "COUNTER")
        COUNTER = 7
        snap = reg.snapshot()
        assert snap[(__name__, "COUNTER")] == 7

    def test_restore_writes_back(self):
        global COUNTER
        reg = GlobalsRegistry()
        reg.register(__name__, "COUNTER")
        COUNTER = 3
        snap = reg.snapshot()
        COUNTER = 99
        reg.restore(snap)
        assert COUNTER == 3

    def test_unknown_attribute_rejected(self):
        with pytest.raises(CheckpointError):
            GlobalsRegistry().register(__name__, "NO_SUCH_GLOBAL")

    def test_register_idempotent(self):
        reg = GlobalsRegistry()
        reg.register(__name__, "COUNTER")
        reg.register(__name__, "COUNTER")
        assert len(reg.registered) == 1

    def test_register_many(self):
        reg = GlobalsRegistry()
        reg.register_many(__name__, ["COUNTER", "TABLE"])
        assert len(reg.registered) == 2

    def test_snapshot_picklable(self):
        global TABLE
        reg = GlobalsRegistry()
        reg.register(__name__, "TABLE")
        TABLE = {"a": 2}
        snap = pickle.loads(pickle.dumps(reg.snapshot()))
        TABLE = {}
        reg.restore(snap)
        assert TABLE == {"a": 2}

    def test_restore_registers_new_entries(self):
        """Restoring on a fresh registry re-populates its entry list."""
        reg = GlobalsRegistry()
        reg.register(__name__, "COUNTER")
        snap = reg.snapshot()
        fresh = GlobalsRegistry()
        fresh.restore(snap)
        assert fresh.registered == reg.registered
