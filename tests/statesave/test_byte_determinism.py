"""Byte-level rerun determinism of persisted checkpoint state.

Two identical runs must leave *bit-identical* stable storage behind:
every chunk, every generation manifest, every commit record.  This is
what makes reruns auditable by hash and what the farm's content-addressed
result cache keys on.  The historical bug: ``created_at=time.time()`` in
manifests and ``wall_time=time.time()`` in commit records baked host
wall-clock readings into persisted bytes, so no two runs ever matched.
"""

from dataclasses import replace

from repro.runtime.config import RunConfig, Variant
from repro.runtime.driver import run_with_recovery
from repro.simmpi import SUM
from repro.simmpi.failures import FailureSchedule
from repro.statesave.storage import Storage


def ring_app(ctx):
    state = ctx.checkpointable_state(lambda: {"i": 0, "acc": 0.0})
    while state["i"] < 60:
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        ctx.mpi.send(float(state["i"]), right, tag=1)
        incoming = ctx.mpi.recv(source=left, tag=1)
        state["acc"] += ctx.mpi.allreduce(incoming, SUM)
        state["i"] += 1
        ctx.potential_checkpoint()
    return round(state["acc"], 10)


CONFIG = RunConfig(
    nprocs=3, seed=11, variant=Variant.FULL,
    checkpoint_interval=0.002, detector_timeout=0.03,
)


def _blobs(config, failures=None):
    storage = Storage(None)
    run_with_recovery(
        ring_app,
        config,
        failures=failures() if failures is not None else None,
        storage=storage,
    )
    return dict(storage.store.backend._blobs)


class TestByteIdenticalRuns:
    def test_failure_free_runs_leave_identical_bytes(self):
        first = _blobs(CONFIG)
        second = _blobs(CONFIG)
        assert first.keys() == second.keys()
        assert first == second  # every chunk, manifest and commit record

    def test_recovery_runs_leave_identical_bytes(self):
        """The same schedule replayed from scratch writes the same bytes —
        including re-taken generations after the rollback."""
        cfg = replace(CONFIG, ckpt_keep_last=2)

        def schedule():
            return FailureSchedule.single(0.004, rank=1)

        first = _blobs(cfg, failures=schedule)
        second = _blobs(cfg, failures=schedule)
        assert first == second

    def test_manifest_created_at_is_virtual_time(self):
        storage = Storage(None)
        run_with_recovery(ring_app, CONFIG, storage=storage)
        epoch = storage.committed_epoch()
        assert epoch is not None
        for rank in range(CONFIG.nprocs):
            manifest = storage.state_manifest(rank, epoch)
            data = storage.read_state(rank, epoch)
            assert manifest.created_at == data.taken_at
        # Commit records carry virtual time only; the historical
        # wall-clock duplicate field is gone.
        for record in storage.commit_history():
            assert record.committed_at >= 0.0
            assert not hasattr(record, "wall_time")
