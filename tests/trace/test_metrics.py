"""Unified metrics registry and its adapters over the stack's stat carriers."""

import pytest

from repro.api.registry import get_app
from repro.api.session import RunRow, SweepCell
from repro.farm.engine import FarmStats
from repro.runtime.config import RunConfig, Variant
from repro.runtime.driver import run_with_recovery
from repro.simmpi.failures import FailureSchedule
from repro.trace.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    campaign_metrics,
    farm_metrics,
    outcome_metrics,
    snapshot_get,
)


def test_registry_count_gauge_observe():
    reg = MetricsRegistry()
    reg.count("a")
    reg.count("a", 2.0)
    reg.gauge("g", 5.0)
    reg.gauge("g", 7.0)  # gauges overwrite
    reg.observe_many("h", [1.0, 3.0, 2.0])
    snap = reg.snapshot()
    assert snap["schema"] == METRICS_SCHEMA
    assert snap["counters"] == {"a": 3.0}
    assert snap["gauges"] == {"g": 7.0}
    assert snap["histograms"]["h"] == {
        "count": 3, "min": 1.0, "max": 3.0, "sum": 6.0, "mean": 2.0,
    }


def test_registry_merge():
    a = MetricsRegistry()
    a.count("c", 1.0)
    a.observe("h", 1.0)
    b = MetricsRegistry()
    b.count("c", 2.0)
    b.count("only_b", 1.0)
    b.gauge("g", 9.0)
    b.observe("h", 5.0)
    a.merge(b)
    snap = a.snapshot()
    assert snap["counters"] == {"c": 3.0, "only_b": 1.0}
    assert snap["gauges"] == {"g": 9.0}
    assert snap["histograms"]["h"]["count"] == 2
    assert snap["histograms"]["h"]["min"] == 1.0
    assert snap["histograms"]["h"]["max"] == 5.0


def test_snapshot_keys_sorted():
    reg = MetricsRegistry()
    for name in ("zeta", "alpha", "mid"):
        reg.count(name)
        reg.observe(f"h.{name}", 1.0)
    snap = reg.snapshot()
    assert list(snap["counters"]) == sorted(snap["counters"])
    assert list(snap["histograms"]) == sorted(snap["histograms"])


def test_snapshot_get_tolerates_junk():
    reg = MetricsRegistry()
    reg.count("x", 4.0)
    snap = reg.snapshot()
    assert snapshot_get(snap, "counters", "x") == 4.0
    assert snapshot_get(snap, "counters", "missing", -1) == -1
    assert snapshot_get({"not": "a snapshot"}, "counters", "x", -1) == -1


@pytest.fixture(scope="module")
def killed_outcome():
    """One laplace run under V3 with a mid-run kill (2 attempts)."""
    app = get_app("laplace")
    params = app.default_params.__class__(n=16, iterations=60)
    cfg = RunConfig(
        nprocs=4,
        variant=Variant.FULL,
        checkpoint_interval=0.0015,
        detector_timeout=0.02,
        trace=True,
    )
    return run_with_recovery(
        app.build(params), cfg, failures=FailureSchedule.single(time=0.004, rank=1)
    )


def test_outcome_metrics_on_real_run(killed_outcome):
    snap = killed_outcome.metrics_snapshot()
    assert snap["schema"] == METRICS_SCHEMA
    assert snapshot_get(snap, "gauges", "run.attempts") == 2.0
    assert snapshot_get(snap, "gauges", "run.restarts") == 1.0
    assert snapshot_get(snap, "gauges", "run.completed") == 1.0
    assert snapshot_get(snap, "counters", "run.kills") == 1.0
    assert snapshot_get(snap, "counters", "ckpt.commits") >= 1.0
    assert snapshot_get(snap, "counters", "net.messages") > 0
    # traced run records trace gauges
    assert snapshot_get(snap, "gauges", "trace.events") > 0
    # per-stage metrics mirror stage_totals exactly
    totals = killed_outcome.stage_totals()
    assert totals
    for name, entry in totals.items():
        assert snapshot_get(snap, "counters", f"proto.stage_calls.{name}") == float(entry["calls"])
        hist = snapshot_get(snap, "histograms", f"proto.stage_seconds.{name}")
        assert hist["sum"] == pytest.approx(entry["seconds"])


def test_run_row_columns_match_outcome(killed_outcome):
    row = RunRow(
        cell=SweepCell(app="laplace", variant=Variant.FULL, seed=0, nprocs=4),
        outcome=killed_outcome,
    ).as_dict()
    assert row["attempts"] == 2 and isinstance(row["attempts"], int)
    assert row["restarts"] == 1
    assert row["virtual_time"] == pytest.approx(killed_outcome.total_virtual_time)
    assert row["checkpoints_committed"] == killed_outcome.checkpoints_committed
    assert row["network_messages"] == killed_outcome.network_messages
    assert row["wall_seconds"] == killed_outcome.total_wall_seconds
    totals = killed_outcome.stage_totals()
    assert row["stage_calls"] == {k: int(v["calls"]) for k, v in totals.items()}


def test_farm_metrics():
    stats = FarmStats(cells=10, hits=9, misses=1, executed=1, wall_seconds=1.5)
    snap = farm_metrics(stats).snapshot()
    assert snapshot_get(snap, "counters", "farm.cells") == 10.0
    assert snapshot_get(snap, "counters", "farm.hits") == 9.0
    assert snapshot_get(snap, "gauges", "farm.hit_rate") == pytest.approx(0.9)
    assert snapshot_get(snap, "histograms", "farm.wall_seconds")["sum"] == 1.5


def test_campaign_metrics_over_verdict_dicts():
    verdicts = [
        {"ok": True, "violations": [], "kills_fired": 2,
         "crashes_fired": 0, "checkpoints_committed": 3, "virtual_time": 0.01},
        {"ok": False, "violations": ["results mismatch"], "kills_fired": 1,
         "crashes_fired": 1, "checkpoints_committed": 1, "virtual_time": 0.02},
    ]
    snap = campaign_metrics(verdicts).snapshot()
    assert snapshot_get(snap, "counters", "chaos.scenarios") == 2.0
    assert snapshot_get(snap, "counters", "chaos.passed") == 1.0
    assert snapshot_get(snap, "counters", "chaos.failed") == 1.0
    assert snapshot_get(snap, "counters", "chaos.violations") == 1.0
    assert snapshot_get(snap, "counters", "chaos.kills_fired") == 3.0
    assert snapshot_get(snap, "histograms", "chaos.virtual_time")["count"] == 2


def test_campaign_metrics_empty_seeds_zero_counters():
    snap = campaign_metrics([]).snapshot()
    assert snapshot_get(snap, "counters", "chaos.scenarios") == 0.0
    assert snapshot_get(snap, "counters", "chaos.failed") == 0.0
