"""End-to-end observability: traced recovery runs, deadlock diagnostics,
chaos flight recorder, farm job-lifecycle events.

Carries the PR's two required integration properties: multi-attempt
``stage_totals()`` sums without double-counting, and same-seed traced
runs export byte-identical traces.
"""

import json

import pytest

from repro.api.registry import get_app
from repro.apps.laplace import LaplaceParams
from repro.chaos.campaign import ScenarioVerdict, _capture_flight, default_base_config
from repro.chaos.scenario import ChaosScenario, KillSpec
from repro.errors import DeadlockError
from repro.farm.engine import Farm
from repro.runtime.config import RunConfig, Variant
from repro.runtime.driver import run_with_recovery
from repro.simmpi.failures import FailureSchedule
from repro.simmpi.simulator import SimConfig, Simulator
from repro.trace import TraceRecorder, to_chrome, to_jsonl

PARAMS = LaplaceParams(n=16, iterations=60)


def traced_killed_run(seed=0):
    cfg = RunConfig(
        nprocs=4,
        variant=Variant.FULL,
        seed=seed,
        checkpoint_interval=0.0015,
        detector_timeout=0.02,
        trace=True,
        trace_buffer=None,  # unbounded: full export, nothing dropped
    )
    return run_with_recovery(
        get_app("laplace").build(PARAMS),
        cfg,
        failures=FailureSchedule.single(time=0.004, rank=1),
    )


@pytest.fixture(scope="module")
def outcome():
    out = traced_killed_run()
    assert len(out.attempts) == 2, "kill at t=0.004 must force one restart"
    return out


# --------------------------------------------------------------------- #
# Required property 1: stage_totals across multi-attempt recovery runs.
# --------------------------------------------------------------------- #


def test_stage_totals_sums_attempts_without_double_counting(outcome):
    totals = outcome.stage_totals()
    assert totals, "V3 pipeline must dispatch into named stages"
    # Every attempt carries its own stage accounting...
    per_attempt = [rec.stage_calls for rec in outcome.attempts]
    assert all(per_attempt)
    # ...and the totals are exactly their sum: nothing dropped, nothing
    # counted twice.
    for name, entry in totals.items():
        manual = sum(calls.get(name, 0) for calls in per_attempt)
        assert entry["calls"] == manual
    # The sum is strictly more than the final attempt alone (the replayed
    # attempt re-dispatches), so totals genuinely span attempts.
    send_like = max(totals, key=lambda n: totals[n]["calls"])
    assert totals[send_like]["calls"] > per_attempt[-1].get(send_like, 0)


# --------------------------------------------------------------------- #
# Required property 2: same seed => byte-identical exported traces.
# --------------------------------------------------------------------- #


def test_same_seed_exports_byte_identical_traces(outcome):
    again = traced_killed_run()
    a = to_jsonl(outcome.trace.events)
    b = to_jsonl(again.trace.events)
    assert a == b
    dump = lambda doc: json.dumps(doc, sort_keys=True)  # noqa: E731
    assert dump(to_chrome(outcome.trace.events)) == dump(to_chrome(again.trace.events))


def test_different_seed_diverges(outcome):
    other = traced_killed_run(seed=1)
    assert to_jsonl(outcome.trace.events) != to_jsonl(other.trace.events)


# --------------------------------------------------------------------- #
# Recovery story on the global virtual timeline.
# --------------------------------------------------------------------- #


def test_recovery_event_ordering(outcome):
    events = outcome.trace.events

    def first(cat, name):
        for ev in events:
            if ev.category == cat and ev.name == name:
                return ev
        raise AssertionError(f"missing event {cat}.{name}")

    kill = first("fail", "kill")
    detect = first("detect", "suspect")
    restore = first("proto", "restore")
    replay_end = first("proto", "replay_end")
    assert kill.t <= detect.t <= restore.t <= replay_end.t
    # The kill happened in attempt 0; restore/replay belong to attempt 1,
    # yet their global timestamps still advance (cross-attempt offset).
    assert kill.attempt == 0 and restore.attempt == 1
    # Attempt boundaries are themselves events.
    begins = [ev for ev in events if ev.name == "attempt_begin"]
    assert len(begins) == 2
    assert begins[1].t >= begins[0].t


def test_trace_gauges_in_snapshot(outcome):
    snap = outcome.metrics_snapshot()
    assert snap["gauges"]["trace.events"] == float(len(outcome.trace))
    assert snap["gauges"]["trace.dropped"] == 0.0


# --------------------------------------------------------------------- #
# Deadlock diagnostics embed each blocked proc's recent events.
# --------------------------------------------------------------------- #


def test_deadlock_message_includes_recent_trace_events():
    def both_recv_first(ctx):
        return ctx.comm.recv(source=(ctx.rank + 1) % 2, tag=1)

    recorder = TraceRecorder()
    sim = Simulator(SimConfig(nprocs=2, seed=0), both_recv_first, tracer=recorder)
    with pytest.raises(DeadlockError) as excinfo:
        sim.run()
    message = str(excinfo.value)
    assert "recent:" in message
    assert "sched." in message  # the tail renders event short() forms


def test_deadlock_message_without_tracer_still_describes():
    def both_recv_first(ctx):
        return ctx.comm.recv(source=(ctx.rank + 1) % 2, tag=1)

    sim = Simulator(SimConfig(nprocs=2, seed=0), both_recv_first)
    with pytest.raises(DeadlockError) as excinfo:
        sim.run()
    assert "recent:" not in str(excinfo.value)


# --------------------------------------------------------------------- #
# Chaos flight recorder.
# --------------------------------------------------------------------- #


def test_chaos_flight_capture_has_per_rank_tails():
    scenario = ChaosScenario(
        name="flight-test",
        kind="single_kill",
        app="laplace",
        variant="full",
        seed=3,
        nprocs=3,
        kills=(KillSpec(frac=0.5, rank=1),),
    )
    cfg = scenario.config(default_base_config())
    flight = _capture_flight(scenario, cfg, PARAMS, horizon=0.01)
    assert flight is not None
    assert "sim" in flight
    assert any(key.isdigit() for key in flight)
    for tail in flight.values():
        assert tail and all("t" in ev and "name" in ev for ev in tail)
    # JSON-safe end to end (it is embedded in campaign reports).
    json.dumps(flight)


def test_verdict_to_dict_embeds_flight():
    scenario = ChaosScenario(
        name="x", kind="single_kill", app="laplace", variant="full",
        seed=0, nprocs=2,
    )
    verdict = ScenarioVerdict(scenario=scenario, ok=False)
    assert "flight" not in verdict.to_dict()
    verdict.flight = {"0": [{"t": 0.0, "name": "kill"}]}
    assert verdict.to_dict()["flight"] == verdict.flight


# --------------------------------------------------------------------- #
# Farm job-lifecycle events.
# --------------------------------------------------------------------- #


def _triple(x):
    return x * 3


def test_farm_emits_cache_and_job_events():
    farm = Farm(None)
    farm.tracer = TraceRecorder()
    assert farm.map(_triple, [1, 2], parallel=False) == [3, 6]
    names = [ev.name for ev in farm.tracer.events if ev.category == "farm"]
    assert names.count("cache_miss") == 2
    assert names.count("job_done") == 2
    farm.tracer.clear()
    assert farm.map(_triple, [1, 2], parallel=False) == [3, 6]
    names = [ev.name for ev in farm.tracer.events if ev.category == "farm"]
    assert names.count("cache_hit") == 2
    assert "job_done" not in names
