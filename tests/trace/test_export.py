"""Exporters: JSONL roundtrip, Chrome validator, text renderers."""

import json

from repro.trace import (
    TraceEvent,
    read_jsonl,
    render_timeline,
    summarize,
    to_chrome,
    to_jsonl,
    validate_chrome,
    write_chrome,
    write_jsonl,
)
from repro.trace.export import SIM_TID


def sample_events():
    return [
        TraceEvent(t=0.0, category="recovery", name="attempt_begin",
                   payload={"from_epoch": None}),
        TraceEvent(t=0.001, category="sched", name="grant", rank=0),
        TraceEvent(t=0.002, category="fail", name="kill", rank=1,
                   payload={"at": 0.002}),
        TraceEvent(t=0.003, category="proto", name="restore", rank=1, epoch=2,
                   attempt=1, payload={"late": 3, "matches": 5}),
    ]


def test_jsonl_roundtrip(tmp_path):
    events = sample_events()
    path = write_jsonl(events, tmp_path / "t.jsonl")
    assert read_jsonl(path) == events


def test_jsonl_deterministic_bytes():
    events = sample_events()
    assert to_jsonl(events) == to_jsonl(list(events))
    # sorted keys, compact separators: no spaces after separators
    line = to_jsonl(events).splitlines()[3]
    assert '", "' not in line and '": ' not in line


def test_chrome_structure_and_tracks(tmp_path):
    events = sample_events()
    doc = to_chrome(events, process_name="test-proc")
    assert validate_chrome(doc) == []
    metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    names = {(e["name"], e["args"]["name"]) for e in metas}
    assert ("process_name", "test-proc") in names
    assert ("thread_name", "rank 0") in names
    assert ("thread_name", "sim") in names
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert len(instants) == len(events)
    # virtual seconds scaled to microseconds; rank-less events on SIM_TID
    assert instants[0]["tid"] == SIM_TID
    assert instants[2]["ts"] == 2000.0
    assert instants[3]["args"] == {"attempt": 1, "epoch": 2, "late": 3, "matches": 5}
    # file output parses back to the same doc
    path = write_chrome(events, tmp_path / "t.json", process_name="test-proc")
    assert json.loads(path.read_text()) == doc


def test_validate_chrome_rejects_malformed():
    assert validate_chrome([]) == ["document is not a JSON object"]
    assert validate_chrome({}) == ["traceEvents is missing or not a list"]
    bad_ph = {"traceEvents": [{"ph": "Z", "pid": 0, "tid": 0, "name": "x"}]}
    assert any("bad ph" in p for p in validate_chrome(bad_ph))
    bad_ts = {"traceEvents": [
        {"ph": "i", "s": "t", "pid": 0, "tid": 0, "name": "x", "ts": -1.0}
    ]}
    assert any("non-negative" in p for p in validate_chrome(bad_ts))
    bad_scope = {"traceEvents": [
        {"ph": "i", "s": "q", "pid": 0, "tid": 0, "name": "x", "ts": 0}
    ]}
    assert any("scope" in p for p in validate_chrome(bad_scope))
    bad_cat = {"traceEvents": [
        {"ph": "i", "s": "t", "pid": 0, "tid": 0, "name": "x", "ts": 0,
         "cat": "nonsense"}
    ]}
    assert any("unknown category" in p for p in validate_chrome(bad_cat))
    bad_tid = {"traceEvents": [
        {"ph": "i", "s": "t", "pid": 0, "tid": "zero", "name": "x", "ts": 0}
    ]}
    assert any("integers" in p for p in validate_chrome(bad_tid))


def test_render_timeline_filters_then_limits():
    events = sample_events()
    text = render_timeline(events)
    assert "recovery.attempt_begin" in text and "r1 e2" in text
    only_fail = render_timeline(events, categories=("fail",))
    assert only_fail.count("\n") == 0 and "fail.kill" in only_fail
    # filter applies before limit: the one fail event survives limit=1
    assert render_timeline(events, limit=1, categories=("fail",)) == only_fail


def test_summarize_counts():
    text = summarize(sample_events())
    assert "events: 4" in text
    assert "attempts: 2" in text
    assert "fail.kill" in text and "sched" in text
