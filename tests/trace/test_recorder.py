"""TraceRecorder: ring semantics, timeline offsets, tails, pickling."""

import pickle

import pytest

from repro.trace import DEFAULT_RING_CAPACITY, TraceEvent, TraceRecorder
from repro.trace.recorder import events_from_dicts, flight_dump


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now


def test_emit_stamps_bound_clock():
    rec = TraceRecorder()
    clock = FakeClock(1.5)
    rec.bind_clock(clock)
    rec.emit("sched", "grant", rank=2)
    clock.now = 2.25
    rec.emit("sched", "block", rank=2, why="recv")
    a, b = rec.events
    assert (a.t, b.t) == (1.5, 2.25)
    assert b.payload == {"why": "recv"}


def test_explicit_t_wins_over_clock():
    rec = TraceRecorder()
    rec.bind_clock(FakeClock(9.0))
    rec.emit("net", "deliver", t=0.5, rank=0)
    assert rec.events[0].t == 0.5


def test_cross_attempt_offset_makes_timeline_monotone():
    rec = TraceRecorder()
    rec.begin_attempt(0)
    rec.bind_clock(FakeClock(0.0))
    rec.emit("fail", "kill", t=0.7, rank=1)
    rec.end_attempt(1.0)  # attempt 0 ended at virtual 1.0
    rec.begin_attempt(1)
    rec.bind_clock(FakeClock(0.0))
    rec.emit("proto", "restore", t=0.2, rank=1)
    kill, restore = rec.events
    assert kill.t == 0.7 and kill.attempt == 0
    assert restore.t == pytest.approx(1.2) and restore.attempt == 1
    assert restore.t > kill.t


def test_ring_bound_and_dropped():
    rec = TraceRecorder(capacity=8)
    for i in range(20):
        rec.emit("sched", "grant", t=float(i))
    assert len(rec) == 8
    assert rec.dropped == 12
    assert rec.events[0].t == 12.0  # oldest survivors
    rec.clear()
    assert len(rec) == 0 and rec.dropped == 0


def test_unbounded_capacity_keeps_everything():
    rec = TraceRecorder(capacity=None)
    for i in range(DEFAULT_RING_CAPACITY + 10 if DEFAULT_RING_CAPACITY < 1000 else 1000):
        rec.emit("sched", "grant", t=float(i))
    assert rec.dropped == 0


def test_tail_filters_by_rank_excluding_sim_events():
    rec = TraceRecorder()
    rec.emit("recovery", "attempt_begin", t=0.0)  # rank None
    for i in range(5):
        rec.emit("sched", "grant", t=float(i + 1), rank=i % 2)
    tail0 = rec.tail(rank=0, n=10)
    assert all(ev.rank == 0 for ev in tail0)
    assert len(tail0) == 3
    # unfiltered tail keeps sim-level events
    assert rec.tail(n=100)[0].rank is None


def test_ranks_and_flight_dump_shape():
    rec = TraceRecorder()
    rec.emit("recovery", "attempt_begin", t=0.0)
    rec.emit("sched", "grant", t=0.1, rank=1)
    rec.emit("sched", "grant", t=0.2, rank=0)
    assert rec.ranks() == [0, 1]
    dump = rec.flight_dump(per_rank=5)
    assert sorted(dump) == ["0", "1", "sim"]
    assert dump["1"][0]["name"] == "grant"
    assert dump["sim"][0]["name"] == "attempt_begin"


def test_module_flight_dump_tolerates_missing_recorder():
    assert flight_dump(None) is None
    assert flight_dump(TraceRecorder()) is None  # empty recorder


def test_pickle_roundtrip_drops_clock():
    rec = TraceRecorder(capacity=4)
    rec.bind_clock(FakeClock(3.0))
    for i in range(6):
        rec.emit("ckpt", "local_checkpoint", t=float(i), rank=0, epoch=i)
    clone = pickle.loads(pickle.dumps(rec))
    assert len(clone) == 4
    assert clone.dropped == 2
    assert [ev.epoch for ev in clone] == [2, 3, 4, 5]
    # rebound clock is gone; emit with explicit t still works
    clone.emit("ckpt", "local_checkpoint", t=9.0, rank=0)
    assert clone.events[-1].t == 9.0


def test_event_category_validated():
    with pytest.raises(ValueError):
        TraceEvent(t=0.0, category="bogus", name="x")


def test_event_dict_roundtrip_and_short():
    ev = TraceEvent(t=1.25, category="proto", name="send", rank=3, epoch=2,
                    attempt=1, payload={"dest": 0, "mid": 7})
    clone = events_from_dicts([ev.to_dict()])[0]
    assert clone == ev
    text = ev.short()
    assert "proto.send" in text and "dest=0" in text
