"""The ``repro-trace`` CLI: record/view/convert/validate round trips."""

import json

import pytest

from repro.trace.cli import main


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One recorded V2 laplace run with a kill, exported both ways."""
    d = tmp_path_factory.mktemp("trace-cli")
    jsonl = d / "trace.jsonl"
    chrome = d / "trace.json"
    rc = main([
        "record", "--app", "laplace", "--variant", "V2",
        "--param", "n=16", "--param", "iterations=60",
        "--kill", "1@0.004",
        "--jsonl", str(jsonl), "--chrome", str(chrome),
    ])
    assert rc == 0
    return jsonl, chrome


def test_record_exports_both_formats(recorded):
    jsonl, chrome = recorded
    assert jsonl.stat().st_size > 0
    doc = json.loads(chrome.read_text())
    assert doc["traceEvents"]


def test_validate_accepts_recorded_chrome(recorded, capsys):
    _, chrome = recorded
    assert main(["validate", str(chrome)]) == 0
    assert "valid Chrome trace-event JSON" in capsys.readouterr().out


def test_validate_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
    assert main(["validate", str(bad)]) == 1
    assert capsys.readouterr().err


def test_view_timeline_and_summary(recorded, capsys):
    jsonl, _ = recorded
    assert main(["view", str(jsonl), "--categories", "fail,detect,recovery"]) == 0
    out = capsys.readouterr().out
    assert "fail.kill" in out and "detect.suspect" in out
    assert main(["view", str(jsonl), "--summary"]) == 0
    assert "events:" in capsys.readouterr().out


def test_view_rejects_unknown_category(recorded, capsys):
    jsonl, _ = recorded
    assert main(["view", str(jsonl), "--categories", "nonsense"]) == 1
    assert "unknown categories" in capsys.readouterr().err


def test_convert_matches_record_chrome_events(recorded, tmp_path):
    jsonl, chrome = recorded
    out = tmp_path / "converted.json"
    assert main(["convert", str(jsonl), str(out)]) == 0
    converted = json.loads(out.read_text())
    original = json.loads(chrome.read_text())
    instants = lambda doc: [e for e in doc["traceEvents"] if e["ph"] == "i"]  # noqa: E731
    assert instants(converted) == instants(original)


def test_record_bad_kill_spec_exits():
    with pytest.raises(SystemExit):
        main(["record", "--kill", "nonsense"])


def test_record_bad_param_exits():
    with pytest.raises(SystemExit):
        main(["record", "--param", "not_a_field=1"])
