"""Point-to-point communication through the Comm interface."""

import numpy as np
import pytest

from repro.errors import DeadlockError, MatchError
from repro.simmpi import ANY_SOURCE, ANY_TAG, run_simple, waitall, waitany


def run(main, n=2, **kw):
    result = run_simple(main, nprocs=n, seed=5, **kw)
    assert result.completed
    return result.results


class TestBlocking:
    def test_send_recv(self):
        def main(ctx):
            if ctx.rank == 0:
                ctx.comm.send({"k": [1, 2]}, dest=1, tag=9)
            elif ctx.rank == 1:
                return ctx.comm.recv(source=0, tag=9)

        assert run(main)[1] == {"k": [1, 2]}

    def test_numpy_payload(self):
        def main(ctx):
            if ctx.rank == 0:
                ctx.comm.send(np.arange(10.0), dest=1)
            else:
                return float(ctx.comm.recv(source=0).sum())

        assert run(main)[1] == 45.0

    def test_status_populated(self):
        def main(ctx):
            if ctx.rank == 0:
                ctx.comm.send(b"abc", dest=1, tag=3)
            else:
                payload = ctx.comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
                st = ctx.comm.last_status
                return (payload, st.source, st.tag)

        assert run(main)[1] == (b"abc", 0, 3)

    def test_tag_selectivity(self):
        def main(ctx):
            if ctx.rank == 0:
                ctx.comm.send("one", dest=1, tag=1)
                ctx.comm.send("two", dest=1, tag=2)
            else:
                second = ctx.comm.recv(source=0, tag=2)
                first = ctx.comm.recv(source=0, tag=1)
                return (first, second)

        assert run(main)[1] == ("one", "two")

    def test_same_tag_order_preserved(self):
        def main(ctx):
            if ctx.rank == 0:
                for i in range(20):
                    ctx.comm.send(i, dest=1, tag=0)
            else:
                return [ctx.comm.recv(source=0, tag=0) for _ in range(20)]

        assert run(main)[1] == list(range(20))

    def test_sendrecv(self):
        def main(ctx):
            partner = 1 - ctx.rank
            return ctx.comm.sendrecv(f"from{ctx.rank}", partner, partner, send_tag=4)

        assert run(main) == ["from1", "from0"]

    def test_bad_dest_raises(self):
        def main(ctx):
            if ctx.rank == 0:
                ctx.comm.send("x", dest=99)

        with pytest.raises(MatchError):
            run(main)


class TestNonblocking:
    def test_isend_irecv_wait(self):
        def main(ctx):
            if ctx.rank == 0:
                req = ctx.comm.isend("hello", dest=1)
                req.wait()
            else:
                req = ctx.comm.irecv(source=0)
                return req.wait()

        assert run(main)[1] == "hello"

    def test_irecv_test_polling(self):
        def main(ctx):
            if ctx.rank == 0:
                ctx.comm.send("late", dest=1)
            else:
                req = ctx.comm.irecv(source=0)
                polls = 0
                while not req.test():
                    ctx.yield_point()
                    polls += 1
                    assert polls < 10_000
                return req.wait()

        assert run(main)[1] == "late"

    def test_waitall(self):
        def main(ctx):
            if ctx.rank == 0:
                for i in range(5):
                    ctx.comm.send(i * 2, dest=1, tag=i)
            else:
                reqs = [ctx.comm.irecv(source=0, tag=i) for i in range(5)]
                return waitall(reqs)

        assert run(main)[1] == [0, 2, 4, 6, 8]

    def test_waitany(self):
        def main(ctx):
            if ctx.rank == 0:
                ctx.comm.send("only-tag-3", dest=1, tag=3)
            else:
                reqs = [ctx.comm.irecv(source=0, tag=t) for t in range(5)]
                idx, payload = waitany(reqs)
                for i, r in enumerate(reqs):
                    if i != idx:
                        r.cancel()
                return (idx, payload)

        assert run(main)[1] == (3, "only-tag-3")

    def test_posted_irecv_takes_priority_over_later_recv(self):
        def main(ctx):
            if ctx.rank == 0:
                ctx.comm.send("m1", dest=1, tag=0)
                ctx.comm.send("m2", dest=1, tag=0)
            else:
                early = ctx.comm.irecv(source=0, tag=0)
                later = ctx.comm.recv(source=0, tag=0)
                return (early.wait(), later)

        assert run(main)[1] == ("m1", "m2")


class TestProbe:
    def test_iprobe_and_take(self):
        def main(ctx):
            if ctx.rank == 0:
                ctx.comm.send(123, dest=1, tag=8)
            else:
                while ctx.comm.iprobe(source=0, tag=8) is None:
                    ctx.yield_point()
                st = ctx.comm.iprobe(source=0, tag=8)
                value = ctx.comm.recv(source=0, tag=8)
                return (st.source, st.tag, value)

        assert run(main)[1] == (0, 8, 123)


class TestDeadlock:
    def test_mutual_recv_detected(self):
        def main(ctx):
            ctx.comm.recv(source=1 - ctx.rank, tag=0)

        with pytest.raises(DeadlockError):
            run(main)

    def test_deadlock_reports_blocked_ranks(self):
        def main(ctx):
            if ctx.rank == 0:
                ctx.comm.recv(source=1, tag=77)

        with pytest.raises(DeadlockError, match="tag=77"):
            run(main)


class TestWtime:
    def test_wtime_monotone(self):
        def main(ctx):
            t0 = ctx.comm.wtime()
            ctx.compute(seconds=0.5)
            t1 = ctx.comm.wtime()
            return t1 - t0

        results = run(main, n=1)
        assert results[0] == pytest.approx(0.5, rel=1e-9)
