"""Unit tests for the MPI matching engine."""


from repro.simmpi.constants import ANY_SOURCE, ANY_TAG
from repro.simmpi.mailbox import Mailbox, RecvDescriptor
from repro.simmpi.message import Envelope


def env(source=0, dest=1, tag=0, context=0, payload="x", piggyback=None):
    return Envelope(source=source, dest=dest, tag=tag, context=context,
                    payload=payload, piggyback=piggyback)


class TestDeliverThenPost:
    def test_unexpected_then_matched(self):
        mb = Mailbox(1)
        assert mb.deliver(env(payload="a")) is None
        desc = mb.post(RecvDescriptor(0, 0, 0))
        assert desc.matched is not None
        assert desc.matched.payload == "a"
        assert mb.pending_unexpected() == 0

    def test_unexpected_fifo_order(self):
        mb = Mailbox(1)
        mb.deliver(env(payload="first"))
        mb.deliver(env(payload="second"))
        d1 = mb.post(RecvDescriptor(0, 0, 0))
        d2 = mb.post(RecvDescriptor(0, 0, 0))
        assert d1.matched.payload == "first"
        assert d2.matched.payload == "second"


class TestPostThenDeliver:
    def test_posted_receive_completed_on_arrival(self):
        mb = Mailbox(1)
        desc = mb.post(RecvDescriptor(0, 5, 0))
        assert desc.matched is None
        completed = mb.deliver(env(tag=5))
        assert completed is desc

    def test_post_order_priority(self):
        """A message matches the earliest-posted compatible receive."""
        mb = Mailbox(1)
        d1 = mb.post(RecvDescriptor(ANY_SOURCE, ANY_TAG, 0))
        d2 = mb.post(RecvDescriptor(0, 0, 0))
        completed = mb.deliver(env())
        assert completed is d1
        assert d2.matched is None


class TestWildcards:
    def test_any_source(self):
        mb = Mailbox(1)
        mb.deliver(env(source=3))
        desc = mb.post(RecvDescriptor(ANY_SOURCE, 0, 0))
        assert desc.matched.source == 3

    def test_any_tag(self):
        mb = Mailbox(1)
        mb.deliver(env(tag=42))
        desc = mb.post(RecvDescriptor(0, ANY_TAG, 0))
        assert desc.matched.tag == 42

    def test_specific_source_excludes_others(self):
        mb = Mailbox(1)
        mb.deliver(env(source=2))
        desc = mb.post(RecvDescriptor(3, ANY_TAG, 0))
        assert desc.matched is None
        assert mb.pending_unexpected() == 1


class TestContextIsolation:
    def test_context_mismatch_never_matches(self):
        mb = Mailbox(1)
        mb.deliver(env(context=7))
        desc = mb.post(RecvDescriptor(0, 0, context=8))
        assert desc.matched is None


class TestPredicates:
    def test_predicate_filters(self):
        """The recovery engine waits for a specific messageID this way."""
        mb = Mailbox(1)
        mb.deliver(env(payload="no", piggyback=1))
        mb.deliver(env(payload="yes", piggyback=2))
        desc = mb.post(RecvDescriptor(0, 0, 0, predicate=lambda e: e.piggyback == 2))
        assert desc.matched.payload == "yes"
        assert mb.pending_unexpected() == 1

    def test_predicate_on_delivery(self):
        mb = Mailbox(1)
        desc = mb.post(RecvDescriptor(0, 0, 0, predicate=lambda e: e.piggyback == 9))
        assert mb.deliver(env(piggyback=3)) is None
        assert mb.deliver(env(piggyback=9)) is desc


class TestTakeAndProbe:
    def test_take_nonblocking(self):
        mb = Mailbox(1)
        assert mb.take(tag=4) is None
        mb.deliver(env(tag=4))
        taken = mb.take(tag=4)
        assert taken is not None and taken.tag == 4
        assert mb.take(tag=4) is None

    def test_probe_does_not_consume(self):
        mb = Mailbox(1)
        mb.deliver(env())
        assert mb.probe() is not None
        assert mb.pending_unexpected() == 1


class TestCancel:
    def test_cancel_posted(self):
        mb = Mailbox(1)
        desc = mb.post(RecvDescriptor(0, 0, 0))
        assert mb.cancel(desc) is True
        assert mb.deliver(env()) is None  # cancelled receive cannot match

    def test_cancel_matched_returns_false(self):
        mb = Mailbox(1)
        mb.deliver(env())
        desc = mb.post(RecvDescriptor(0, 0, 0))
        assert mb.cancel(desc) is False


class TestClear:
    def test_clear_drops_everything(self):
        mb = Mailbox(1)
        mb.deliver(env())
        desc = mb.post(RecvDescriptor(9, 9, 0))
        mb.clear()
        assert mb.pending_unexpected() == 0
        assert desc.cancelled
