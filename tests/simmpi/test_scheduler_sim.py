"""Scheduler and simulator-level behaviour: determinism, policies, guards."""

import pytest

from repro.errors import ConfigError, SimMPIError
from repro.simmpi import SUM, SimConfig, Simulator, run_simple


def chatty(ctx):
    acc = ctx.rank
    for _ in range(15):
        acc = ctx.comm.allreduce(acc + 1, SUM)
    return acc


class TestDeterminism:
    def test_same_seed_identical_run(self):
        a = run_simple(chatty, nprocs=5, seed=42, ordering="random")
        b = run_simple(chatty, nprocs=5, seed=42, ordering="random")
        assert a.results == b.results
        assert a.virtual_time == b.virtual_time
        assert a.total_slices == b.total_slices
        assert a.network.delivered == b.network.delivered

    def test_different_seed_different_interleaving(self):
        a = run_simple(chatty, nprocs=5, seed=1, ordering="random")
        b = run_simple(chatty, nprocs=5, seed=2, ordering="random")
        # Results identical (deterministic algorithm)...
        assert a.results == b.results
        # ...but the schedule differs.
        assert a.virtual_time != b.virtual_time or a.total_slices != b.total_slices

    def test_round_robin_policy(self):
        # With zero network jitter, a round-robin schedule is completely
        # seed-independent (the seed only feeds the network delay RNG).
        a = run_simple(chatty, nprocs=4, seed=0, sched_policy="round_robin", jitter=0.0)
        b = run_simple(chatty, nprocs=4, seed=9, sched_policy="round_robin", jitter=0.0)
        assert a.completed and b.completed
        assert a.total_slices == b.total_slices


class TestConfigValidation:
    def test_zero_procs_rejected(self):
        with pytest.raises(ConfigError):
            SimConfig(nprocs=0)

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigError):
            Simulator(SimConfig(nprocs=2, sched_policy="lifo"), lambda ctx: None)

    def test_wrong_main_count_rejected(self):
        with pytest.raises(ConfigError):
            Simulator(SimConfig(nprocs=3), [lambda ctx: None] * 2)


class TestGuards:
    def test_max_slices_livelock_guard(self):
        def spinner(ctx):
            while True:
                ctx.yield_point()

        with pytest.raises(SimMPIError, match="max_slices"):
            run_simple(spinner, nprocs=2, seed=0, max_slices=500)

    def test_application_exception_propagates(self):
        def buggy(ctx):
            if ctx.rank == 1:
                raise ValueError("application bug")
            ctx.comm.recv(source=1)

        with pytest.raises(ValueError, match="application bug"):
            run_simple(buggy, nprocs=2, seed=0)

    def test_simulator_single_use(self):
        sim = Simulator(SimConfig(nprocs=1), lambda ctx: 1)
        sim.run()
        with pytest.raises(SimMPIError):
            sim.run()


class TestPerRankMains:
    def test_distinct_mains(self):
        def producer(ctx):
            ctx.comm.send("payload", dest=1)
            return "sent"

        def consumer(ctx):
            return ctx.comm.recv(source=0)

        result = run_simple([producer, consumer], nprocs=2, seed=0)
        assert result.results == ["sent", "payload"]


class TestStatsAndResults:
    def test_results_in_rank_order(self):
        result = run_simple(lambda ctx: ctx.rank * 10, nprocs=4, seed=0)
        assert result.results == [0, 10, 20, 30]

    def test_wall_and_virtual_time_recorded(self):
        result = run_simple(chatty, nprocs=3, seed=0)
        assert result.wall_seconds > 0
        assert result.virtual_time > 0
        assert len(result.per_rank_wall) == 3

    def test_network_stats_balance(self):
        result = run_simple(chatty, nprocs=4, seed=0)
        assert result.network.posted == result.network.delivered


class TestRoundRobinCursor:
    """Regression: the single-runnable fast path must advance the cursor."""

    @staticmethod
    def _scheduler():
        from types import SimpleNamespace

        from repro.simmpi.scheduler import Scheduler

        # pick() never touches the simulator, only policy state.
        return Scheduler(sim=SimpleNamespace(), seed=0, policy="round_robin")

    @staticmethod
    def _procs(*ranks):
        from types import SimpleNamespace

        return [SimpleNamespace(rank=r) for r in ranks]

    def test_solo_slice_advances_cursor(self):
        sched = self._scheduler()
        p0, p1, p2, p3 = self._procs(0, 1, 2, 3)
        everyone = [p0, p1, p2, p3]
        assert sched.pick(everyone).rank == 0  # cursor -> 1
        # A solo slice for rank 2 (everyone else briefly blocked) is a real
        # turn: the cursor must move past rank 2 …
        assert sched.pick([p2]).rank == 2
        # … so the next full pick resumes *after* it, not back at rank 1.
        assert sched.pick(everyone).rank == 3

    def test_grant_sequence_after_solo_slice(self):
        sched = self._scheduler()
        p0, p1, p2, p3 = self._procs(0, 1, 2, 3)
        everyone = [p0, p1, p2, p3]
        grants = [sched.pick(everyone).rank for _ in range(2)]  # 0, 1
        grants.append(sched.pick([p3]).rank)                    # solo 3
        grants.extend(sched.pick(everyone).rank for _ in range(3))
        # After the solo slice at rank 3 the cycle wraps to rank 0 — the
        # stale-cursor bug replayed rank 2 and 3 before wrapping.
        assert grants == [0, 1, 3, 0, 1, 2]
