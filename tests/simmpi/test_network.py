"""Unit tests for the simulated interconnect."""

import pytest

from repro.errors import SimMPIError
from repro.simmpi.message import Envelope
from repro.simmpi.network import Network
from repro.util.rng import RngStream


def make_net(ordering="per_tag_fifo", jitter=20e-6, seed=0):
    return Network(4, RngStream(seed, "net"), base_delay=5e-6,
                   jitter=jitter, ordering=ordering)


def env(source=0, dest=1, tag=0, payload=b"x"):
    return Envelope(source=source, dest=dest, tag=tag, context=0, payload=payload)


class TestDelivery:
    def test_message_delivered_after_delay(self):
        net = make_net()
        net.post(env(), now=0.0)
        assert net.pop_due(0.0) == []
        t = net.next_delivery_time()
        assert t > 0.0
        delivered = net.pop_due(t)
        assert len(delivered) == 1

    def test_reliability_no_loss(self):
        """Every message between live ranks is delivered exactly once."""
        net = make_net(ordering="random")
        for i in range(200):
            net.post(env(source=i % 3, dest=3, payload=i), now=0.0)
        delivered = net.pop_due(1.0)
        assert sorted(e.payload for e in delivered) == list(range(200))
        assert net.stats.delivered == 200

    def test_deterministic_given_seed(self):
        def run(seed):
            net = make_net(ordering="random", seed=seed)
            for i in range(50):
                net.post(env(payload=i), now=0.0)
            return [e.payload for e in net.pop_due(1.0)]

        assert run(7) == run(7)
        assert run(7) != run(8)  # overwhelmingly likely


class TestOrdering:
    def _delivery_order(self, ordering, tags):
        net = make_net(ordering=ordering, seed=3)
        for i, tag in enumerate(tags):
            net.post(env(tag=tag, payload=i), now=0.0)
        return [e.payload for e in net.pop_due(10.0)]

    def test_fifo_preserves_pair_order(self):
        order = self._delivery_order("fifo", [0, 1, 0, 1, 0, 1, 0, 1])
        assert order == list(range(8))

    def test_per_tag_fifo_preserves_same_tag_order(self):
        order = self._delivery_order("per_tag_fifo", [0] * 20)
        assert order == list(range(20))

    def test_per_tag_fifo_can_reorder_across_tags(self):
        """MPI's non-overtaking guarantee is per matching descriptor; the
        paper's protocol must survive cross-tag reordering (Section 3.3)."""
        seen_reorder = False
        for seed in range(20):
            net = make_net(ordering="per_tag_fifo", seed=seed)
            for i in range(20):
                net.post(env(tag=i % 2, payload=i), now=0.0)
            order = [e.payload for e in net.pop_due(10.0)]
            if order != sorted(order):
                seen_reorder = True
                break
        assert seen_reorder

    def test_random_can_reorder_same_tag(self):
        seen_reorder = False
        for seed in range(20):
            net = make_net(ordering="random", seed=seed)
            for i in range(20):
                net.post(env(payload=i), now=0.0)
            order = [e.payload for e in net.pop_due(10.0)]
            if order != sorted(order):
                seen_reorder = True
                break
        assert seen_reorder

    def test_unknown_ordering_rejected(self):
        with pytest.raises(SimMPIError):
            make_net(ordering="bogus")


class TestStoppingFaults:
    def test_messages_to_dead_rank_dropped(self):
        net = make_net()
        net.post(env(dest=2), now=0.0)
        net.mark_dead(2)
        assert net.pop_due(1.0) == []
        assert net.stats.dropped_dead_dest == 1

    def test_messages_from_dead_rank_not_accepted(self):
        net = make_net()
        net.mark_dead(0)
        net.post(env(source=0), now=0.0)
        assert net.in_flight() == 0
        assert net.stats.dropped_dead_source == 1

    def test_live_traffic_unaffected(self):
        net = make_net()
        net.mark_dead(3)
        net.post(env(source=0, dest=1), now=0.0)
        assert len(net.pop_due(1.0)) == 1


class TestStats:
    def test_byte_accounting(self):
        net = make_net()
        e = env(payload=b"\x00" * 100)
        net.post(e, now=0.0)
        net.pop_due(1.0)
        assert net.stats.bytes_posted == e.nbytes
        assert net.stats.bytes_delivered == e.nbytes

    def test_piggyback_bytes_counted(self):
        plain = Envelope(source=0, dest=1, tag=0, context=0, payload=b"\x00" * 10)
        packed = Envelope(source=0, dest=1, tag=0, context=0, payload=b"\x00" * 10,
                          piggyback=123)
        full = Envelope(source=0, dest=1, tag=0, context=0, payload=b"\x00" * 10,
                        piggyback=(1, True, 5))
        assert packed.nbytes == plain.nbytes + 4
        assert full.nbytes == plain.nbytes + 12

    def test_drain(self):
        net = make_net()
        net.post(env(), now=0.0)
        net.drain()
        assert net.in_flight() == 0


class TestReviveAll:
    """A reused (revived) network must not inherit the previous attempt's
    state.  The recovery driver builds a fresh Network per attempt, so
    this pins the standalone ``revive_all`` reuse API, not the driver."""

    def test_revive_clears_death_records(self):
        net = make_net()
        net.mark_dead(1)
        net.mark_dead(2)
        net.revive_all()
        net.post(env(source=1, dest=2), now=0.0)
        assert net.pop_due(1.0)  # traffic flows again

    def test_revive_clears_delivery_floors(self):
        """A revived network must not push fresh messages past FIFO floors
        accumulated by the previous (failed) attempt."""
        net = make_net(jitter=0.0)
        # Build a large delivery floor for the (0, 1, tag, ctx) key: posts
        # to a dead destination still advance _last_delivery.
        net.mark_dead(1)
        for _ in range(5):
            net.post(env(source=0, dest=1), now=100.0)
        net.revive_all()
        assert net._last_delivery == {}
        # The restarted attempt's clock begins again near zero; its first
        # message must be due at now + base delay, not after the stale floor.
        net.post(env(source=0, dest=1), now=0.0)
        assert net.next_delivery_time() == pytest.approx(5e-6)
        assert len(net.pop_due(1e-3)) == 1
