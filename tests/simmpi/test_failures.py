"""Fault injection and failure detection."""

import pytest

from repro.errors import ConfigError
from repro.simmpi import (
    SUM,
    CheckpointCrash,
    FailureSchedule,
    HeartbeatFailureDetector,
    KillEvent,
    SimConfig,
    Simulator,
)


class TestFailureSchedule:
    def test_sorted_consumption(self):
        sched = FailureSchedule([KillEvent(0.5, 1), KillEvent(0.1, 0)])
        assert sched.next_time() == 0.1
        assert [e.rank for e in sched.due(0.2)] == [0]
        assert sched.next_time() == 0.5
        assert [e.rank for e in sched.due(1.0)] == [1]
        assert sched.next_time() is None

    def test_due_consumes_once(self):
        sched = FailureSchedule([KillEvent(0.1, 0)])
        assert len(sched.due(0.2)) == 1
        assert sched.due(0.3) == []

    def test_reset(self):
        sched = FailureSchedule([KillEvent(0.1, 0)])
        sched.due(1.0)
        sched.reset()
        assert sched.next_time() == 0.1

    def test_random_single_reproducible(self):
        a = FailureSchedule.random_single(5, 8, (0.0, 1.0))
        b = FailureSchedule.random_single(5, 8, (0.0, 1.0))
        assert a.remaining() == b.remaining()

    def test_random_single_window_validation(self):
        with pytest.raises(ConfigError):
            FailureSchedule.random_single(1, 4, (1.0, 1.0))

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            KillEvent(-1.0, 0)

    def test_shifted(self):
        sched = FailureSchedule([KillEvent(0.5, 2)]).shifted(-0.2)
        assert sched.next_time() == pytest.approx(0.3)

    def test_shifted_preserves_checkpoint_crashes(self):
        """Regression: shifted() used to silently drop the mid-checkpoint
        crash family (crashes are epoch-indexed; a time shift must carry
        them over unchanged)."""
        sched = FailureSchedule(
            [KillEvent(0.5, 2)],
            checkpoint_crashes=[CheckpointCrash(rank=1, epoch=2)],
        ).shifted(0.1)
        assert sched.remaining_checkpoint_crashes() == (
            CheckpointCrash(rank=1, epoch=2),
        )
        assert sched.take_checkpoint_crash(1, 2) is not None

    def test_shifted_preserves_attempt_pins(self):
        sched = FailureSchedule([KillEvent(0.5, 2, attempt=1)]).shifted(0.1)
        assert sched.remaining() == [KillEvent(0.6, 2, attempt=1)]

    def test_reset_replays_consumed_checkpoint_crashes(self):
        """Regression: reset() promised a full rewind but only moved the
        kill cursor — a consumed crash was gone for good."""
        sched = FailureSchedule(
            [KillEvent(0.1, 0)],
            checkpoint_crashes=[CheckpointCrash(rank=1, epoch=2)],
        )
        assert sched.take_checkpoint_crash(1, 2) is not None
        assert sched.take_checkpoint_crash(1, 2) is None  # fires once
        sched.due(1.0)
        sched.begin_attempt(3)
        sched.reset()
        assert sched.next_time() == 0.1
        assert sched.current_attempt == 0
        assert sched.take_checkpoint_crash(1, 2) is not None

    def test_attempt_pinned_events_gated(self):
        sched = FailureSchedule(
            [KillEvent(0.1, 0), KillEvent(0.2, 1, attempt=2)]
        )
        # Attempt 0: only the unpinned event is visible and consumable.
        assert sched.next_time() == 0.1
        assert [e.rank for e in sched.due(5.0)] == [0]
        assert sched.next_time() is None
        # Attempt 2: the pinned event becomes eligible.
        sched.begin_attempt(2)
        assert sched.next_time() == 0.2
        assert [e.rank for e in sched.due(5.0)] == [1]

    def test_consumed_and_fired_accounting(self):
        sched = FailureSchedule(
            [KillEvent(0.1, 0)],
            checkpoint_crashes=[CheckpointCrash(rank=1, epoch=1)],
        )
        assert sched.consumed_events() == ()
        sched.due(1.0)
        assert sched.consumed_events() == (KillEvent(0.1, 0),)
        assert sched.fired_checkpoint_crashes() == ()
        sched.take_checkpoint_crash(1, 1)
        assert sched.fired_checkpoint_crashes() == (
            CheckpointCrash(rank=1, epoch=1),
        )

    def test_negative_attempt_rejected(self):
        with pytest.raises(ConfigError):
            KillEvent(0.1, 0, attempt=-1)
        with pytest.raises(ConfigError):
            FailureSchedule().begin_attempt(-1)


class TestHeartbeatDetector:
    def test_silent_rank_suspected(self):
        det = HeartbeatFailureDetector(3, timeout=1.0, heartbeat_interval=0.5)
        det.heard_from(0, 0.0)
        det.heard_from(1, 0.0)
        det.heard_from(2, 0.0)
        det.heard_from(0, 2.0)
        det.heard_from(1, 2.0)
        events = det.tick(2.0)
        assert [e.rank for e in events] == [2]
        assert det.is_suspected(2)

    def test_no_false_positive_while_active(self):
        det = HeartbeatFailureDetector(2, timeout=1.0, heartbeat_interval=0.5)
        for t in range(10):
            det.heard_from(0, float(t))
            det.heard_from(1, float(t))
            assert det.tick(float(t)) == []

    def test_completed_rank_exempt(self):
        det = HeartbeatFailureDetector(2, timeout=1.0, heartbeat_interval=0.5)
        det.mark_completed(1)
        det.heard_from(0, 5.0)
        assert det.tick(5.0) == []

    def test_detection_latency_measured(self):
        det = HeartbeatFailureDetector(2, timeout=0.5, heartbeat_interval=0.25)
        det.heard_from(0, 1.0)
        det.heard_from(1, 1.0)
        det.heard_from(0, 3.0)
        det.tick(3.0)
        assert det.detection_latency(1, true_death_time=1.0) == pytest.approx(2.0)

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            HeartbeatFailureDetector(2, timeout=0.0)

    def test_suspected_rank_evidence_is_error(self):
        det = HeartbeatFailureDetector(2, timeout=0.1, heartbeat_interval=0.05)
        det.heard_from(0, 0.0)
        det.tick(10.0)
        with pytest.raises(AssertionError):
            det.heard_from(0, 11.0)


def busy_worker(ctx):
    for _ in range(500):
        ctx.comm.allreduce(1, SUM)
    return "done"


class TestEndToEndFailure:
    def test_kill_detected_and_reported(self):
        sim = Simulator(
            SimConfig(nprocs=4, seed=0, detector_timeout=0.02),
            busy_worker,
            failures=FailureSchedule.single(0.001, 3),
        )
        result = sim.run()
        assert result.failed
        assert result.dead_ranks == (3,)
        assert result.detected_at >= 0.001 + 0.02 - 1e-9

    def test_detection_latency_close_to_timeout(self):
        sim = Simulator(
            SimConfig(nprocs=4, seed=0, detector_timeout=0.05),
            busy_worker,
            failures=FailureSchedule.single(0.002, 1),
        )
        result = sim.run()
        assert result.failed
        # Detection fires within a small margin after death + timeout.
        assert result.detected_at == pytest.approx(0.002 + 0.05, rel=0.2)

    def test_multiple_kills_same_attempt(self):
        sim = Simulator(
            SimConfig(nprocs=4, seed=0, detector_timeout=0.05),
            busy_worker,
            failures=FailureSchedule([KillEvent(0.001, 0), KillEvent(0.002, 2)]),
        )
        result = sim.run()
        assert result.failed
        assert result.dead_ranks == (0, 2)

    def test_kill_before_start(self):
        sim = Simulator(
            SimConfig(nprocs=2, seed=0, detector_timeout=0.01),
            busy_worker,
            failures=FailureSchedule.single(0.0, 0),
        )
        result = sim.run()
        assert result.failed and 0 in result.dead_ranks

    def test_kill_after_completion_is_noop(self):
        def quick(ctx):
            return ctx.rank

        sim = Simulator(
            SimConfig(nprocs=2, seed=0),
            quick,
            failures=FailureSchedule.single(100.0, 1),
        )
        result = sim.run()
        assert result.completed and not result.failed
