"""Detector-edge behaviour: exact detection latency and liveness refresh.

These pin the two subtle rules the simulator's event loop relies on:

* when every surviving rank is blocked, the clock *jumps* straight to
  ``death_time + timeout`` and the suspicion fires at exactly that time —
  detection latency is ``timeout``, not "timeout plus however long the
  loop happened to take";
* ``_refresh_liveness`` never refreshes a rank with a pending kill (its
  death time is already recorded); refreshing it would push ``last_heard``
  past ``death_time`` and stall the detector-fire time jump.
"""

import pytest

from repro.simmpi.failures import FailureSchedule, KillEvent
from repro.simmpi.process import ProcState
from repro.simmpi.simulator import SimConfig, Simulator


def _deaf_pair(ctx):
    """Both ranks block on a receive that is never posted."""
    peer = 1 - ctx.rank
    return ctx.comm.recv(source=peer, tag=99)


class TestExactDetectionLatency:
    @pytest.mark.parametrize(
        "kill_time,timeout",
        [
            (0.01, 0.25),   # default-ish detector
            (0.001, 5.0),   # huge timeout: one very large advance_to jump
            (2.0, 0.03),    # late kill, tight detector
        ],
    )
    def test_latency_is_exactly_timeout_under_time_jumps(self, kill_time, timeout):
        """With all survivors blocked, time advances only by event jumps, so
        the suspicion must land at exactly ``death + timeout``."""
        sim = Simulator(
            SimConfig(nprocs=2, seed=3, detector_timeout=timeout),
            _deaf_pair,
            failures=FailureSchedule.single(kill_time, rank=1),
        )
        result = sim.run()
        assert result.failed
        assert result.dead_ranks == (1,)
        # The kill lands via an exact advance_to jump (everyone is blocked),
        # so death time is exactly the scheduled time and detection is
        # exactly one timeout later — up to the event loop's 1e-12 tie-break
        # nudge when float subtraction rounds (now - death) below timeout.
        assert result.detected_at == pytest.approx(kill_time + timeout, abs=1e-9)
        assert sim.detector.detection_latency(1, kill_time) == pytest.approx(
            timeout, abs=1e-9
        )
        # Never early: a suspicion before death + timeout is a detector bug.
        assert result.detected_at >= kill_time + timeout - 1e-12


class TestRefreshLivenessWithPendingKill:
    def test_pending_kill_rank_is_never_refreshed(self):
        sim = Simulator(SimConfig(nprocs=3, seed=0), lambda ctx: None)
        for proc in sim.procs:
            proc.state = ProcState.RUNNABLE
        # Rank 1 has a kill pending: its death time is recorded but the
        # rank has not yet unwound to DEAD.
        sim._death_time[1] = 0.005
        sim.clock.advance_to(0.02)
        before = sim.detector._last_heard[1]
        sim._refresh_liveness()
        # Pinned: the doomed rank's liveness is frozen at its last genuine
        # activity, while healthy ranks are refreshed to "now".
        assert sim.detector._last_heard[1] == before
        assert sim.detector._last_heard[0] == 0.02
        assert sim.detector._last_heard[2] == 0.02

    def test_detector_fire_time_not_stalled_by_refresh(self):
        """With the doomed rank frozen, the next-fire estimate stays at
        ``death + timeout`` no matter how often liveness is refreshed."""
        timeout = 0.25
        sim = Simulator(
            SimConfig(nprocs=2, seed=0, detector_timeout=timeout),
            lambda ctx: None,
        )
        for proc in sim.procs:
            proc.state = ProcState.RUNNABLE
        sim._death_time[1] = 0.01
        for t in (0.02, 0.05, 0.2):
            sim.clock.advance_to(t)
            sim._refresh_liveness()
            assert sim._next_detector_fire() == 0.01 + timeout
        # Once the detector actually suspects the rank, the jump target
        # disappears (nothing left to wait for).
        sim.clock.advance_to(0.01 + timeout)
        assert sim.detector.tick(sim.clock.now)
        assert sim._next_detector_fire() is None


class TestAllRanksDeadTermination:
    """Regression: when every rank dies before detection, the time jump to
    the detector fire must carry the 1e-12 tie-break.  With ``last_heard ==
    death_time``, float rounding can put ``(death + timeout) - death`` just
    below ``timeout`` (2.03 - 2.0 < 0.03 in IEEE doubles), and a bare jump
    to the fire time then spins the event loop forever."""

    def test_whole_world_killed_still_detects(self):
        sim = Simulator(
            SimConfig(nprocs=2, seed=0, detector_timeout=0.03),
            _deaf_pair,
            failures=FailureSchedule(
                [KillEvent(2.0, 0), KillEvent(2.0, 1)]
            ),
        )
        result = sim.run()  # pre-fix: never returns
        assert result.failed
        assert result.dead_ranks == (0, 1)
        assert result.detected_at == pytest.approx(2.03, abs=1e-9)
