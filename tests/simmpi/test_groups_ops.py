"""Groups, reduction ops, clock, and datatype size accounting."""

import pickle

import numpy as np
import pytest

from repro.errors import SimMPIError
from repro.simmpi.clock import CostModel, VirtualClock
from repro.simmpi.datatypes import sizeof
from repro.simmpi.group import Group
from repro.simmpi.op import MAX, MAXLOC, MINLOC, SUM, Op, reduce_sequence


class TestGroup:
    def test_world(self):
        g = Group.world(4)
        assert g.size == 4
        assert g.members == (0, 1, 2, 3)

    def test_rank_translation(self):
        g = Group((5, 2, 7))
        assert g.rank_of(2) == 1
        assert g.world_rank(2) == 7
        assert g.contains(5) and not g.contains(0)

    def test_subset(self):
        g = Group((5, 2, 7)).subset([0, 2])
        assert g.members == (5, 7)

    def test_translate_between_groups(self):
        a = Group((0, 1, 2, 3))
        b = Group((2, 3))
        assert a.translate(b, 2) == 0
        assert a.translate(b, 0) is None

    def test_duplicates_rejected(self):
        with pytest.raises(SimMPIError):
            Group((1, 1))

    def test_out_of_range(self):
        with pytest.raises(SimMPIError):
            Group((0, 1)).world_rank(5)


class TestOps:
    def test_scalar_sum(self):
        assert SUM(2, 3) == 5

    def test_array_elementwise(self):
        out = MAX(np.array([1, 5]), np.array([4, 2]))
        assert out.tolist() == [4, 5]

    def test_maxloc_minloc(self):
        assert MAXLOC((3.0, 0), (5.0, 1)) == (5.0, 1)
        assert MAXLOC((5.0, 2), (5.0, 1)) == (5.0, 1)  # ties: lowest index
        assert MINLOC((3.0, 0), (5.0, 1)) == (3.0, 0)

    def test_reduce_sequence_order(self):
        op = Op.create("CONCAT-test", lambda a, b: a + b, commutative=False)
        assert reduce_sequence(op, ["a", "b", "c"]) == "abc"

    def test_reduce_empty_rejected(self):
        with pytest.raises(SimMPIError):
            reduce_sequence(SUM, [])

    def test_op_pickles_by_name(self):
        restored = pickle.loads(pickle.dumps(SUM))
        assert restored is SUM

    def test_user_op_pickle_roundtrip(self):
        op = Op.create("user-xor-test", lambda a, b: a ^ b)
        assert pickle.loads(pickle.dumps(op)) is op

    def test_unknown_op_lookup(self):
        with pytest.raises(SimMPIError):
            Op.lookup("never-registered")


class TestClock:
    def test_charge_accumulates(self):
        clock = VirtualClock()
        clock.charge(1.0)
        clock.charge(0.5)
        assert clock.now == pytest.approx(1.5)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().charge(-1)

    def test_advance_never_backwards(self):
        clock = VirtualClock()
        clock.advance_to(2.0)
        clock.advance_to(1.0)
        assert clock.now == 2.0

    def test_cost_model(self):
        cm = CostModel(alpha=1e-6, beta=1e-9, flop=1e-9)
        assert cm.message_cost(1000) == pytest.approx(2e-6)
        assert cm.compute_cost(1e6) == pytest.approx(1e-3)


class TestSizeof:
    @pytest.mark.parametrize(
        "payload,expected",
        [
            (None, 0),
            (True, 1),
            (7, 8),
            (3.14, 8),
            (1 + 2j, 16),
            (b"abcd", 4),
            ("héllo", 6),
        ],
    )
    def test_scalars(self, payload, expected):
        assert sizeof(payload) == expected

    def test_ndarray_exact(self):
        assert sizeof(np.zeros((10, 10))) == 800

    def test_containers_scale(self):
        small = sizeof([1.0] * 4)
        large = sizeof([1.0] * 400)
        assert large > small * 50

    def test_arbitrary_object_falls_back_to_pickle(self):
        class Thing:
            pass

        assert sizeof(Thing()) > 0
