"""Collective algorithms: correctness across sizes, roots, and orderings."""

import numpy as np
import pytest

from repro.simmpi import MAX, MIN, SUM, run_simple

SIZES = [1, 2, 3, 4, 5, 7, 8, 16]
ORDERINGS = ["fifo", "per_tag_fifo", "random"]


def run(main, n, ordering="per_tag_fifo", seed=11):
    result = run_simple(main, nprocs=n, seed=seed, ordering=ordering)
    assert result.completed
    return result.results


@pytest.mark.parametrize("n", SIZES)
def test_allreduce_sum(n):
    results = run(lambda ctx: ctx.comm.allreduce(ctx.rank + 1, SUM), n)
    assert results == [n * (n + 1) // 2] * n


@pytest.mark.parametrize("n", SIZES)
def test_allreduce_max_min(n):
    def main(ctx):
        return (ctx.comm.allreduce(ctx.rank, MAX), ctx.comm.allreduce(ctx.rank, MIN))

    assert run(main, n) == [(n - 1, 0)] * n


@pytest.mark.parametrize("n", [2, 4, 8])
def test_allreduce_arrays(n):
    def main(ctx):
        vec = np.full(16, float(ctx.rank + 1))
        return float(ctx.comm.allreduce(vec, SUM).sum())

    expected = 16.0 * n * (n + 1) / 2
    assert run(main, n) == [expected] * n


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast(n, root):
    r = n - 1 if root == "last" else 0

    def main(ctx):
        obj = {"data": 42} if ctx.rank == r else None
        return ctx.comm.bcast(obj, root=r)

    assert run(main, n) == [{"data": 42}] * n


@pytest.mark.parametrize("n", SIZES)
def test_reduce_at_root(n):
    def main(ctx):
        return ctx.comm.reduce(float(ctx.rank), SUM, root=0)

    results = run(main, n)
    assert results[0] == float(sum(range(n)))
    assert all(r is None for r in results[1:])


def test_reduce_rank_order_determinism():
    """Linear fold in rank order keeps float reductions bit-stable."""
    def main(ctx):
        value = 0.1 * (ctx.rank + 1) + 1e-14 * ctx.rank
        return ctx.comm.allreduce(value, SUM)

    a = run(main, 5, seed=1)
    b = run(main, 5, seed=99)  # different interleavings, same fold order
    assert a == b


@pytest.mark.parametrize("n", SIZES)
def test_gather(n):
    def main(ctx):
        return ctx.comm.gather(ctx.rank * 3, root=0)

    results = run(main, n)
    assert results[0] == [i * 3 for i in range(n)]


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("ordering", ORDERINGS)
def test_allgather(n, ordering):
    def main(ctx):
        return ctx.comm.allgather(chr(ord("a") + ctx.rank))

    expected = [chr(ord("a") + i) for i in range(n)]
    assert run(main, n, ordering) == [expected] * n


@pytest.mark.parametrize("n", SIZES)
def test_scatter(n):
    def main(ctx):
        objs = [i * i for i in range(n)] if ctx.rank == 0 else None
        return ctx.comm.scatter(objs, root=0)

    assert run(main, n) == [i * i for i in range(n)]


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("ordering", ORDERINGS)
def test_alltoall(n, ordering):
    def main(ctx):
        return ctx.comm.alltoall([ctx.rank * 100 + d for d in range(n)])

    results = run(main, n, ordering)
    for rank, got in enumerate(results):
        assert got == [s * 100 + rank for s in range(n)]


@pytest.mark.parametrize("n", SIZES)
def test_scan(n):
    def main(ctx):
        return ctx.comm.scan(ctx.rank + 1, SUM)

    assert run(main, n) == [sum(range(1, i + 2)) for i in range(n)]


@pytest.mark.parametrize("n", [2, 3, 8])
def test_barrier_synchronisation(n):
    """No rank may pass the barrier before every rank reached it: the
    pre-barrier flags must all be visible after it."""
    def main(ctx):
        flag = ctx.comm.allgather(True)  # warm-up
        ctx.comm.barrier()
        return all(flag)

    assert run(main, n) == [True] * n


def test_concurrent_collectives_on_split_comms():
    """Disjoint sub-communicators run independent collectives."""
    def main(ctx):
        sub = ctx.comm.split(color=ctx.rank % 2, key=ctx.rank)
        total = sub.allreduce(ctx.rank, SUM)
        return (ctx.rank % 2, total)

    results = run(main, 6)
    evens = sum(r for r in range(6) if r % 2 == 0)
    odds = sum(r for r in range(6) if r % 2 == 1)
    for rank, (color, total) in enumerate(results):
        assert total == (evens if color == 0 else odds)


def test_dup_isolates_tag_space():
    def main(ctx):
        dup = ctx.comm.dup()
        if ctx.rank == 0:
            ctx.comm.send("on-world", 1, tag=5)
            dup.send("on-dup", 1, tag=5)
            return None
        if ctx.rank == 1:
            got_dup = dup.recv(source=0, tag=5)
            got_world = ctx.comm.recv(source=0, tag=5)
            return (got_world, got_dup)
        return None

    results = run(main, 2)
    assert results[1] == ("on-world", "on-dup")


def test_split_undefined_color():
    def main(ctx):
        sub = ctx.comm.split(color=None if ctx.rank == 0 else 1, key=ctx.rank)
        if sub is None:
            return "excluded"
        return sub.size

    results = run(main, 4)
    assert results[0] == "excluded"
    assert results[1:] == [3, 3, 3]
