"""Runtime configuration (variant mapping) and driver bookkeeping."""

import pytest

from repro.errors import ConfigError
from repro.runtime import RunConfig, Variant, run_with_recovery
from repro.runtime.driver import run_variant_suite
from repro.simmpi import SUM, FailureSchedule
from repro.statesave import Storage


def derived(run_cfg):
    """The modern path: C3Config derived from the declared stage stack."""
    return run_cfg.stack_spec().c3_config(run_cfg)


class TestVariantMapping:
    def test_unmodified(self):
        cfg = derived(RunConfig(nprocs=2, variant=Variant.UNMODIFIED))
        assert not cfg.protocol_enabled
        assert not cfg.piggyback_enabled
        assert cfg.checkpoint_interval is None

    def test_piggyback(self):
        cfg = derived(RunConfig(nprocs=2, variant=Variant.PIGGYBACK))
        assert cfg.protocol_enabled
        assert cfg.piggyback_enabled
        assert cfg.checkpoint_interval is None

    def test_no_app_state(self):
        cfg = derived(RunConfig(nprocs=2, variant=Variant.NO_APP_STATE,
                                checkpoint_interval=0.5))
        assert cfg.protocol_enabled
        assert not cfg.save_app_state
        assert cfg.checkpoint_interval == 0.5

    def test_full(self):
        cfg = derived(RunConfig(nprocs=2, variant=Variant.FULL,
                                checkpoint_interval=0.5))
        assert cfg.save_app_state

    def test_c3_config_shim_warns_and_matches(self):
        run_cfg = RunConfig(nprocs=2, variant=Variant.FULL, checkpoint_interval=0.5)
        with pytest.warns(DeprecationWarning, match="stack_spec"):
            assert run_cfg.c3_config() == derived(run_cfg)

    def test_checkpointing_active_flag(self):
        assert RunConfig(nprocs=2, variant=Variant.FULL).checkpointing_active
        assert not RunConfig(nprocs=2, variant=Variant.PIGGYBACK).checkpointing_active
        assert not RunConfig(
            nprocs=2, variant=Variant.FULL, checkpoint_interval=None
        ).checkpointing_active

    def test_paper_names(self):
        assert Variant.UNMODIFIED.paper_name == "Unmodified Program"
        assert Variant.FULL.paper_name == "Full Checkpoints"

    def test_validation(self):
        with pytest.raises(ConfigError):
            RunConfig(nprocs=2, max_restarts=-1)
        with pytest.raises(ConfigError):
            RunConfig(nprocs=2, checkpoint_interval=0.0)


def counting_app(n=80):
    def app(ctx):
        state = ctx.checkpointable_state(lambda: {"i": 0, "acc": 0})
        while state["i"] < n:
            state["acc"] += ctx.mpi.allreduce(state["i"], SUM)
            state["i"] += 1
            ctx.potential_checkpoint()
        return state["acc"]

    return app


class TestDriver:
    CFG = dict(nprocs=3, seed=4, checkpoint_interval=0.002, detector_timeout=0.04)

    def test_attempt_records(self):
        out = run_with_recovery(
            counting_app(), RunConfig(**self.CFG),
            failures=FailureSchedule.single(0.004, 1),
        )
        assert len(out.attempts) == 2
        first, second = out.attempts
        assert first.failed and not first.completed
        assert second.completed and not second.failed
        assert first.index == 0 and second.index == 1
        assert out.restarts == 1

    def test_failure_schedule_not_replayed_across_attempts(self):
        """A consumed kill event must not re-fire on the restarted attempt."""
        sched = FailureSchedule.single(0.004, 2)
        out = run_with_recovery(counting_app(), RunConfig(**self.CFG), failures=sched)
        assert len(out.attempts) == 2
        assert sched.next_time() is None

    def test_layer_stats_from_final_attempt(self):
        out = run_with_recovery(counting_app(), RunConfig(**self.CFG))
        assert len(out.layer_stats) == 3
        assert all(s.collectives > 0 for s in out.layer_stats)

    def test_storage_reused_across_attempts(self):
        storage = Storage(None)
        out = run_with_recovery(
            counting_app(), RunConfig(**self.CFG),
            failures=FailureSchedule.single(0.005, 0),
            storage=storage,
        )
        assert out.attempts[1].started_from_epoch == storage.committed_epoch() or \
            out.attempts[1].started_from_epoch <= storage.committed_epoch()

    def test_disk_backed_storage(self, tmp_path):
        cfg = RunConfig(storage_path=str(tmp_path / "ckpt"), **self.CFG)
        gold = run_with_recovery(counting_app(), RunConfig(**self.CFG))
        out = run_with_recovery(
            counting_app(), cfg, failures=FailureSchedule.single(0.005, 1)
        )
        assert out.results == gold.results

    def test_checkpoints_committed_counts_waves_not_epoch_index(self):
        """Regression: the outcome must report how many waves committed
        *during the run*, not the storage's last committed epoch index.
        A second run sharing the storage resumes from the first run's
        commit, so its epoch index keeps growing while its own wave count
        starts from zero."""
        storage = Storage(None)
        first = run_with_recovery(counting_app(), RunConfig(**self.CFG),
                                  storage=storage)
        assert first.checkpoints_committed >= 1
        assert first.checkpoints_committed == storage.commits
        second = run_with_recovery(counting_app(), RunConfig(**self.CFG),
                                   storage=storage)
        own_commits = storage.commits - first.checkpoints_committed
        assert second.checkpoints_committed == own_commits
        # The stale behaviour reported the (larger) cumulative epoch index.
        assert storage.committed_epoch() > second.checkpoints_committed
        # Same discipline for byte accounting: per-run, not cumulative.
        assert (
            first.storage_bytes_written + second.storage_bytes_written
            == storage.bytes_written
        )

    def test_run_variant_suite(self):
        outcomes = run_variant_suite(counting_app(30), RunConfig(**self.CFG))
        results = {v: o.results for v, o in outcomes.items()}
        # Every variant computes the same application answer.
        assert len({tuple(r) for r in results.values()}) == 1
        assert outcomes[Variant.FULL].checkpoints_committed >= 1
        assert outcomes[Variant.PIGGYBACK].checkpoints_committed == 0
