"""Threads-vs-coop bit-identity: the cooperative core's contract.

The cooperative core replaces one OS thread per rank with one resumable
generator per rank, but the scheduler policy, RNG draw sequence, virtual
clock charges, and message matching are shared code — so every
observable outcome must be *bit-identical* across cores.  This suite
pins that contract three ways:

1. the full V0-V3 x {laplace, dense_cg} sweep, failure-free and with a
   mid-run kill forcing detector + recovery, fingerprinted down to
   virtual time, network byte counters, storage accounting, and
   per-attempt records;
2. the six pinned ``repro.chaos.regressions`` schedules — the nastiest
   interleavings this project has found — judged under both cores with
   verdicts compared field-for-field;
3. a traced run exported with ``repro.trace.to_jsonl`` byte-compared
   across cores (trace events carry only virtual time, so the exports
   must be identical strings).
"""

from dataclasses import replace

import pytest

from repro.api.registry import get_app
from repro.apps.dense_cg import CGParams
from repro.apps.laplace import LaplaceParams
from repro.chaos.campaign import CampaignConfig, check_scenario, default_base_config
from repro.chaos.regressions import REGRESSION_SCENARIOS
from repro.runtime import RunConfig, Variant, run_with_recovery
from repro.simmpi import FailureSchedule
from repro.trace import TraceRecorder, to_jsonl

#: Small-but-real workloads: enough iterations to cross several
#: checkpoint intervals, small enough that the 2x core sweep stays cheap.
APP_BUILDS = {
    "laplace": lambda: get_app("laplace").build(LaplaceParams(n=16, iterations=60)),
    "dense_cg": lambda: get_app("dense_cg").build(CGParams(n=48, iterations=30)),
}

VARIANTS = [Variant.UNMODIFIED, Variant.PIGGYBACK, Variant.NO_APP_STATE, Variant.FULL]


def _config(core, variant, seed=3):
    return RunConfig(
        nprocs=4,
        seed=seed,
        variant=variant,
        sim_core=core,
        checkpoint_interval=0.002,
        detector_timeout=0.05,
    )


def _fingerprint(out):
    """Every deterministic observable of a run (wall clock excluded)."""
    attempts = [
        (
            a.index,
            a.completed,
            a.failed,
            a.dead_ranks,
            a.started_from_epoch,
            repr(a.virtual_time),
            repr(a.kills),
            repr(a.checkpoint_crashes),
            repr(sorted(a.stage_calls.items())),
        )
        for a in out.attempts
    ]
    return (
        repr(out.results),
        repr(out.total_virtual_time),
        out.network_bytes,
        out.network_messages,
        out.checkpoints_committed,
        out.storage_bytes_written,
        repr(attempts),
    )


@pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v.name)
@pytest.mark.parametrize("app", sorted(APP_BUILDS))
@pytest.mark.parametrize("kill", [None, 0.004], ids=["clean", "killed"])
def test_core_parity_sweep(app, variant, kill):
    fps = {}
    for core in ("threads", "coop"):
        failures = (
            FailureSchedule.single(time=kill, rank=1) if kill is not None else None
        )
        out = run_with_recovery(
            APP_BUILDS[app](), _config(core, variant), failures=failures
        )
        assert out.completed
        if kill is not None:
            assert out.restarts >= 1, "kill must force at least one restart"
        fps[core] = _fingerprint(out)
    assert fps["threads"] == fps["coop"]


@pytest.mark.parametrize("name", sorted(REGRESSION_SCENARIOS))
def test_pinned_chaos_schedules_core_parity(name):
    """The pinned regression interleavings judge identically per core."""
    verdicts = {}
    for core in ("threads", "coop"):
        campaign = CampaignConfig(
            base_config=replace(default_base_config(), sim_core=core)
        )
        verdicts[core] = check_scenario(REGRESSION_SCENARIOS[name], campaign)
    for core, verdict in verdicts.items():
        assert verdict.ok, f"{name} under {core}: {verdict.violations}"
    a, b = verdicts["threads"], verdicts["coop"]
    assert (a.attempts, a.restarts, a.kills_fired, a.crashes_fired) == (
        b.attempts, b.restarts, b.kills_fired, b.crashes_fired
    )
    assert repr(a.virtual_time) == repr(b.virtual_time)
    assert a.checkpoints_committed == b.checkpoints_committed


def test_trace_export_byte_identical_across_cores():
    """Same seed, same kill: the JSONL trace export is the same string."""
    exports = {}
    for core in ("threads", "coop"):
        tracer = TraceRecorder(capacity=None)  # unbounded: full export
        cfg = _config(core, Variant.FULL)
        out = run_with_recovery(
            APP_BUILDS["laplace"](),
            cfg,
            failures=FailureSchedule.single(time=0.004, rank=1),
            tracer=tracer,
        )
        assert out.completed and out.restarts >= 1
        exports[core] = to_jsonl(tracer.events)
    assert exports["threads"] == exports["coop"]
    assert exports["coop"].count("\n") > 100, "trace export looks empty"
