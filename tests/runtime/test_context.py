"""C3AppContext behaviour: state registration, RNG checkpointing, nondet."""

import pytest

from repro.errors import ConfigError
from repro.runtime import RunConfig, run_with_recovery
from repro.runtime.context import C3AppContext
from repro.simmpi import SUM, FailureSchedule


CFG = dict(nprocs=2, seed=9, checkpoint_interval=0.002, detector_timeout=0.04)


class _StubLayer:
    """Just enough CommLike surface for constructing a context directly."""

    state_provider = None


class _StubRankCtx:
    rank = 0
    size = 1

    def __init__(self):
        self.rng = object()


class TestLegacyBlobRestore:
    """The legacy/bare-blob branch of ``checkpointable_state``: a restored
    blob without the ``{"user": ..., "rng": ...}`` wrapper is handed back
    verbatim and the live RNG stream is left untouched."""

    def make_ctx(self, blob):
        return C3AppContext(
            _StubRankCtx(), _StubLayer(), restored_app_state=blob, restored=True
        )

    def test_bare_blob_returned_verbatim(self):
        blob = {"grid": [1, 2, 3]}  # dict, but not the user/rng wrapper
        ctx = self.make_ctx(blob)
        rng_before = ctx._rank_ctx.rng
        state = ctx.checkpointable_state(lambda: {"grid": []})
        assert state is blob
        assert ctx._rank_ctx.rng is rng_before

    def test_non_dict_blob_returned_verbatim(self):
        blob = [4, 5, 6]
        ctx = self.make_ctx(blob)
        assert ctx.checkpointable_state(list) is blob

    def test_partial_wrapper_treated_as_legacy(self):
        # "user" present but "rng" missing: not the modern wrapper.
        blob = {"user": {"x": 1}}
        ctx = self.make_ctx(blob)
        assert ctx.checkpointable_state(dict) is blob

    def test_modern_wrapper_unpacks_user_and_rng(self):
        rng = object()
        blob = {"user": {"x": 1}, "rng": rng}
        ctx = self.make_ctx(blob)
        state = ctx.checkpointable_state(dict)
        assert state == {"x": 1}
        assert ctx._rank_ctx.rng is rng

    def test_restored_none_falls_back_to_init(self):
        ctx = C3AppContext(
            _StubRankCtx(), _StubLayer(), restored_app_state=None, restored=True
        )
        assert ctx.checkpointable_state(lambda: "fresh") == "fresh"


class TestStateRegistration:
    def test_double_registration_rejected(self):
        def app(ctx):
            ctx.checkpointable_state(dict)
            ctx.checkpointable_state(dict)

        with pytest.raises(ConfigError):
            run_with_recovery(app, RunConfig(**CFG))

    def test_init_called_once_on_fresh_start(self):
        def app(ctx):
            state = ctx.checkpointable_state(lambda: {"calls": 0, "i": 0})
            state["calls"] += 1
            while state["i"] < 30:
                ctx.mpi.allreduce(1, SUM)
                state["i"] += 1
                ctx.potential_checkpoint()
            return state["calls"]

        out = run_with_recovery(app, RunConfig(**CFG))
        assert out.results == [1, 1]

    def test_restored_state_returned_after_failure(self):
        def app(ctx):
            state = ctx.checkpointable_state(lambda: {"fresh": True, "i": 0})
            fresh_at_entry = state["fresh"]
            state["fresh"] = False
            while state["i"] < 60:
                ctx.mpi.allreduce(1, SUM)
                state["i"] += 1
                ctx.potential_checkpoint()
            return fresh_at_entry

        out = run_with_recovery(
            app, RunConfig(**CFG), failures=FailureSchedule.single(0.004, 1)
        )
        # The second attempt saw the restored (already-mutated) state.
        assert out.results == [False, False]


class TestRngCheckpointing:
    def test_rng_not_rewound_on_restart(self):
        """Draws already consumed before the checkpoint must not repeat."""
        def app(ctx):
            state = ctx.checkpointable_state(lambda: {"i": 0, "draws": []})
            while state["i"] < 60:
                state["draws"].append(round(ctx.rng.random(), 12))
                ctx.mpi.allreduce(1, SUM)
                state["i"] += 1
                ctx.potential_checkpoint()
            return state["draws"]

        gold = run_with_recovery(app, RunConfig(**CFG))
        out = run_with_recovery(
            app, RunConfig(**CFG), failures=FailureSchedule.single(0.004, 0)
        )
        for rank in range(2):
            draws = out.results[rank]
            assert len(set(draws)) == len(draws), "stream rewound: repeated draws"
            assert draws == gold.results[rank]


class TestNondetHelpers:
    def test_ctx_random_goes_through_nondet(self):
        def app(ctx):
            state = ctx.checkpointable_state(lambda: {"i": 0})
            values = []
            while state["i"] < 20:
                values.append(ctx.random())
                ctx.mpi.allreduce(1, SUM)
                state["i"] += 1
                ctx.potential_checkpoint()
            return all(0.0 <= v < 1.0 for v in values)

        out = run_with_recovery(app, RunConfig(**CFG))
        assert out.results == [True, True]

    def test_wtime_monotone_through_context(self):
        def app(ctx):
            ctx.checkpointable_state(lambda: {})
            t0 = ctx.wtime()
            ctx.compute(seconds=0.001)
            return ctx.wtime() - t0

        out = run_with_recovery(app, RunConfig(**CFG))
        assert all(dt >= 0.0009 for dt in out.results)
