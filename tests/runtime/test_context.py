"""C3AppContext behaviour: state registration, RNG checkpointing, nondet."""

import pytest

from repro.errors import ConfigError
from repro.runtime import RunConfig, run_with_recovery
from repro.simmpi import SUM, FailureSchedule


CFG = dict(nprocs=2, seed=9, checkpoint_interval=0.002, detector_timeout=0.04)


class TestStateRegistration:
    def test_double_registration_rejected(self):
        def app(ctx):
            ctx.checkpointable_state(dict)
            ctx.checkpointable_state(dict)

        with pytest.raises(ConfigError):
            run_with_recovery(app, RunConfig(**CFG))

    def test_init_called_once_on_fresh_start(self):
        def app(ctx):
            state = ctx.checkpointable_state(lambda: {"calls": 0, "i": 0})
            state["calls"] += 1
            while state["i"] < 30:
                ctx.mpi.allreduce(1, SUM)
                state["i"] += 1
                ctx.potential_checkpoint()
            return state["calls"]

        out = run_with_recovery(app, RunConfig(**CFG))
        assert out.results == [1, 1]

    def test_restored_state_returned_after_failure(self):
        def app(ctx):
            state = ctx.checkpointable_state(lambda: {"fresh": True, "i": 0})
            fresh_at_entry = state["fresh"]
            state["fresh"] = False
            while state["i"] < 60:
                ctx.mpi.allreduce(1, SUM)
                state["i"] += 1
                ctx.potential_checkpoint()
            return fresh_at_entry

        out = run_with_recovery(
            app, RunConfig(**CFG), failures=FailureSchedule.single(0.004, 1)
        )
        # The second attempt saw the restored (already-mutated) state.
        assert out.results == [False, False]


class TestRngCheckpointing:
    def test_rng_not_rewound_on_restart(self):
        """Draws already consumed before the checkpoint must not repeat."""
        def app(ctx):
            state = ctx.checkpointable_state(lambda: {"i": 0, "draws": []})
            while state["i"] < 60:
                state["draws"].append(round(ctx.rng.random(), 12))
                ctx.mpi.allreduce(1, SUM)
                state["i"] += 1
                ctx.potential_checkpoint()
            return state["draws"]

        gold = run_with_recovery(app, RunConfig(**CFG))
        out = run_with_recovery(
            app, RunConfig(**CFG), failures=FailureSchedule.single(0.004, 0)
        )
        for rank in range(2):
            draws = out.results[rank]
            assert len(set(draws)) == len(draws), "stream rewound: repeated draws"
            assert draws == gold.results[rank]


class TestNondetHelpers:
    def test_ctx_random_goes_through_nondet(self):
        def app(ctx):
            state = ctx.checkpointable_state(lambda: {"i": 0})
            values = []
            while state["i"] < 20:
                values.append(ctx.random())
                ctx.mpi.allreduce(1, SUM)
                state["i"] += 1
                ctx.potential_checkpoint()
            return all(0.0 <= v < 1.0 for v in values)

        out = run_with_recovery(app, RunConfig(**CFG))
        assert out.results == [True, True]

    def test_wtime_monotone_through_context(self):
        def app(ctx):
            ctx.checkpointable_state(lambda: {})
            t0 = ctx.wtime()
            ctx.compute(seconds=0.001)
            return ctx.wtime() - t0

        out = run_with_recovery(app, RunConfig(**CFG))
        assert all(dt >= 0.0009 for dt in out.results)
