"""Unit and property tests for the 32-bit piggyback word packing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PiggybackError
from repro.util.intpack import MAX_MESSAGE_ID, pack_piggyback, unpack_piggyback


class TestPackUnpack:
    def test_zero_word(self):
        assert pack_piggyback(0, False, 0) == 0

    def test_color_bit_is_msb(self):
        assert pack_piggyback(1, False, 0) == 1 << 31

    def test_logging_bit(self):
        assert pack_piggyback(0, True, 0) == 1 << 30

    def test_max_message_id(self):
        word = pack_piggyback(1, True, MAX_MESSAGE_ID)
        assert unpack_piggyback(word) == (1, True, MAX_MESSAGE_ID)

    def test_word_fits_32_bits(self):
        word = pack_piggyback(1, True, MAX_MESSAGE_ID)
        assert 0 <= word < (1 << 32)

    def test_message_id_overflow_rejected(self):
        with pytest.raises(PiggybackError):
            pack_piggyback(0, False, MAX_MESSAGE_ID + 1)

    def test_negative_message_id_rejected(self):
        with pytest.raises(PiggybackError):
            pack_piggyback(0, False, -1)

    def test_bad_color_rejected(self):
        with pytest.raises(PiggybackError):
            pack_piggyback(2, False, 0)

    def test_unpack_rejects_oversized_word(self):
        with pytest.raises(PiggybackError):
            unpack_piggyback(1 << 32)

    def test_unpack_rejects_negative_word(self):
        with pytest.raises(PiggybackError):
            unpack_piggyback(-1)


@given(
    color=st.integers(0, 1),
    logging=st.booleans(),
    mid=st.integers(0, MAX_MESSAGE_ID),
)
def test_roundtrip(color, logging, mid):
    assert unpack_piggyback(pack_piggyback(color, logging, mid)) == (color, logging, mid)


@given(
    a=st.tuples(st.integers(0, 1), st.booleans(), st.integers(0, MAX_MESSAGE_ID)),
    b=st.tuples(st.integers(0, 1), st.booleans(), st.integers(0, MAX_MESSAGE_ID)),
)
def test_injective(a, b):
    """Distinct triples encode to distinct words."""
    wa = pack_piggyback(*a)
    wb = pack_piggyback(*b)
    assert (wa == wb) == (a == b)
