"""Tests for framed, checksummed checkpoint serialization."""

import io
import os

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.serialization import (
    FrameCorruptError,
    atomic_write_bytes,
    dumps_framed,
    loads_framed,
    read_all_frames,
    read_frame,
    write_frame,
)


class TestRoundtrip:
    def test_simple_object(self):
        assert loads_framed(dumps_framed({"a": 1})) == {"a": 1}

    def test_numpy_array(self):
        arr = np.arange(100, dtype=np.float64).reshape(10, 10)
        out = loads_framed(dumps_framed(arr))
        assert np.array_equal(out, arr)

    def test_aliasing_preserved(self):
        """Pickle memoisation: two references to one object stay one object
        after restore — the Python analogue of the paper's same-virtual-
        address pointer guarantee (Section 5.1.4)."""
        shared = [1, 2, 3]
        obj = {"x": shared, "y": shared}
        out = loads_framed(dumps_framed(obj))
        assert out["x"] is out["y"]
        out["x"].append(4)
        assert out["y"] == [1, 2, 3, 4]

    def test_multiple_frames_in_stream(self):
        buf = io.BytesIO()
        write_frame(buf, "one")
        write_frame(buf, {"two": 2})
        buf.seek(0)
        assert read_all_frames(buf) == ["one", {"two": 2}]

    def test_read_frame_eof(self):
        with pytest.raises(EOFError):
            read_frame(io.BytesIO(b""))


class TestCorruptionDetection:
    def test_truncated_header(self):
        blob = dumps_framed("payload")
        with pytest.raises(FrameCorruptError):
            read_frame(io.BytesIO(blob[:4]))

    def test_truncated_payload(self):
        blob = dumps_framed("payload")
        with pytest.raises(FrameCorruptError):
            loads_framed(blob[:-3])

    def test_bitflip_detected(self):
        blob = bytearray(dumps_framed({"key": "value"}))
        blob[-1] ^= 0xFF
        with pytest.raises(FrameCorruptError):
            loads_framed(bytes(blob))

    def test_bad_magic(self):
        blob = bytearray(dumps_framed(1))
        blob[0] ^= 0xFF
        with pytest.raises(FrameCorruptError):
            loads_framed(bytes(blob))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(FrameCorruptError):
            loads_framed(dumps_framed(1) + b"junk")


@given(st.recursive(
    st.none() | st.booleans() | st.integers() | st.floats(allow_nan=False) | st.text(),
    lambda children: st.lists(children, max_size=4) | st.dictionaries(st.text(max_size=6), children, max_size=4),
    max_leaves=20,
))
def test_roundtrip_property(obj):
    assert loads_framed(dumps_framed(obj)) == obj


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = str(tmp_path / "sub" / "file.bin")
        atomic_write_bytes(path, b"first")
        assert open(path, "rb").read() == b"first"
        atomic_write_bytes(path, b"second")
        assert open(path, "rb").read() == b"second"

    def test_no_tmp_residue(self, tmp_path):
        path = str(tmp_path / "file.bin")
        atomic_write_bytes(path, b"data")
        assert os.listdir(tmp_path) == ["file.bin"]
