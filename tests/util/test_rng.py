"""Tests for deterministic named RNG streams."""

import pickle

from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "net") == derive_seed(42, "net")

    def test_name_sensitivity(self):
        assert derive_seed(42, "net") != derive_seed(42, "sched")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "net") != derive_seed(2, "net")

    def test_nonnegative_63bit(self):
        s = derive_seed(123456789, "stream")
        assert 0 <= s < 2**63


class TestRngStream:
    def test_same_seed_same_sequence(self):
        a = RngStream(7, "x")
        b = RngStream(7, "x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_differ(self):
        a = RngStream(7, "x")
        b = RngStream(7, "y")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_integers_bounds(self):
        s = RngStream(0, "ints")
        for _ in range(100):
            v = s.integers(5, 10)
            assert 5 <= v < 10

    def test_choice(self):
        s = RngStream(0, "choice")
        seq = ["a", "b", "c"]
        assert all(s.choice(seq) in seq for _ in range(20))

    def test_choice_empty_raises(self):
        import pytest

        with pytest.raises(ValueError):
            RngStream(0, "c").choice([])

    def test_shuffle_is_permutation(self):
        s = RngStream(3, "sh")
        data = list(range(20))
        shuffled = list(data)
        s.shuffle(shuffled)
        assert sorted(shuffled) == data

    def test_pickle_resumes_midstream(self):
        """Checkpointed RNG state must resume exactly where it left off."""
        s = RngStream(9, "ck")
        _ = [s.random() for _ in range(5)]
        blob = pickle.dumps(s)
        expected = [s.random() for _ in range(5)]
        restored = pickle.loads(blob)
        assert [restored.random() for _ in range(5)] == expected

    def test_spawn_independent(self):
        parent = RngStream(1, "p")
        a = parent.spawn("child")
        b = parent.spawn("child")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_exponential_positive(self):
        s = RngStream(2, "exp")
        assert all(s.exponential(1e-5) >= 0 for _ in range(100))


@given(st.integers(0, 2**32), st.text(min_size=1, max_size=12))
def test_derive_seed_stable_property(seed, name):
    assert derive_seed(seed, name) == derive_seed(seed, name)
    assert 0 <= derive_seed(seed, name) < 2**63
