"""Initiator state machine (paper Section 4.1 phases), tested in isolation."""

import pytest

from repro.protocol.control import PleaseCheckpoint, StopLogging
from repro.protocol.initiator import Initiator, WavePhase


class Harness:
    """Fake control fabric recording everything the initiator sends."""

    def __init__(self, nprocs=4, interval=10.0):
        self.sent = []          # (message, dest)
        self.commits = []       # (epoch, time)
        self.now = 0.0
        self.initiator = Initiator(
            nprocs=nprocs,
            interval=interval,
            send_control=lambda msg, dest: self.sent.append((msg, dest)),
            commit=lambda epoch, t: self.commits.append((epoch, t)),
            now=lambda: self.now,
        )


class TestWaveLifecycle:
    def test_initiate_broadcasts_please_checkpoint(self):
        h = Harness()
        h.initiator.initiate(current_epoch=0)
        assert h.initiator.phase is WavePhase.COLLECTING_READY
        assert h.initiator.target_epoch == 1
        please = [m for m, _ in h.sent if isinstance(m, PleaseCheckpoint)]
        assert len(please) == 4
        assert all(m.epoch == 1 for m in please)

    def test_all_ready_triggers_stop_logging(self):
        h = Harness()
        h.initiator.initiate(0)
        h.sent.clear()
        for rank in range(4):
            h.initiator.on_ready(rank, epoch=1)
        stops = [m for m, _ in h.sent if isinstance(m, StopLogging)]
        assert len(stops) == 4
        assert h.initiator.phase is WavePhase.COLLECTING_STOPPED

    def test_partial_ready_does_not_stop(self):
        h = Harness()
        h.initiator.initiate(0)
        h.sent.clear()
        for rank in range(3):
            h.initiator.on_ready(rank, epoch=1)
        assert h.sent == []

    def test_all_stopped_commits(self):
        h = Harness()
        h.initiator.initiate(0)
        for rank in range(4):
            h.initiator.on_ready(rank, epoch=1)
        h.now = 5.0
        for rank in range(4):
            h.initiator.on_stopped(rank, epoch=1)
        assert h.commits == [(1, 5.0)]
        assert h.initiator.phase is WavePhase.IDLE
        assert h.initiator.last_commit_time == 5.0

    def test_early_stopped_before_stop_logging(self):
        """Phase 4 condition (ii): stoppedLogging may precede stopLogging."""
        h = Harness()
        h.initiator.initiate(0)
        h.initiator.on_stopped(2, epoch=1)  # early terminator
        for rank in range(4):
            h.initiator.on_ready(rank, epoch=1)
        for rank in (0, 1, 3):
            h.initiator.on_stopped(rank, epoch=1)
        assert len(h.commits) == 1

    def test_stale_tokens_ignored(self):
        h = Harness()
        h.initiator.initiate(0)
        h.initiator.on_ready(0, epoch=99)
        assert h.initiator.ready == set()
        h.initiator.on_stopped(0, epoch=0)
        assert h.initiator.stopped == set()

    def test_wave_stats_recorded(self):
        h = Harness()
        h.now = 1.0
        h.initiator.initiate(0)
        h.now = 2.0
        for rank in range(4):
            h.initiator.on_ready(rank, epoch=1)
        h.now = 3.0
        for rank in range(4):
            h.initiator.on_stopped(rank, epoch=1)
        (wave,) = h.initiator.completed_waves
        assert wave.epoch == 1
        assert wave.initiated_at == 1.0
        assert wave.committed_at == 3.0
        assert wave.duration == pytest.approx(2.0)


class TestPolling:
    def test_poll_respects_interval(self):
        h = Harness(interval=10.0)
        h.now = 5.0
        h.initiator.poll(current_epoch=0)
        assert h.initiator.phase is WavePhase.IDLE
        h.now = 10.0
        h.initiator.poll(current_epoch=0)
        assert h.initiator.phase is WavePhase.COLLECTING_READY

    def test_poll_never_overlaps_waves(self):
        h = Harness(interval=1.0)
        h.now = 100.0
        h.initiator.poll(0)
        sent_before = len(h.sent)
        h.now = 200.0
        h.initiator.poll(0)  # wave still collecting: no second initiation
        assert len(h.sent) == sent_before

    def test_interval_none_never_fires(self):
        h = Harness(interval=None)
        h.now = 1e9
        h.initiator.poll(0)
        assert h.initiator.phase is WavePhase.IDLE

    def test_force_initiate(self):
        h = Harness(interval=None)
        h.initiator.force_initiate = True
        h.initiator.poll(0)
        assert h.initiator.phase is WavePhase.COLLECTING_READY


class TestRecoveryQuiescence:
    def test_waves_blocked_until_replay_done(self):
        h = Harness(interval=1.0)
        h.initiator.begin_recovery({0, 1, 2, 3})
        h.now = 100.0
        h.initiator.poll(5)
        assert h.initiator.phase is WavePhase.IDLE
        for rank in range(4):
            h.initiator.on_replay_done(rank)
        h.initiator.poll(5)
        assert h.initiator.phase is WavePhase.COLLECTING_READY
        assert h.initiator.target_epoch == 6

    def test_begin_recovery_resets_wave_state(self):
        h = Harness()
        h.initiator.initiate(0)
        h.initiator.on_ready(1, epoch=1)
        h.initiator.begin_recovery({0, 1, 2, 3})
        assert h.initiator.phase is WavePhase.IDLE
        assert h.initiator.ready == set()
