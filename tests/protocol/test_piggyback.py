"""Piggyback codecs: round-trips and full-vs-packed equivalence."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PiggybackError
from repro.protocol.classify import (
    MessageClass,
    classify_by_color,
    classify_by_epoch,
)
from repro.protocol.piggyback import FullCodec, PackedCodec, get_codec


class TestFullCodec:
    def test_roundtrip(self):
        codec = FullCodec()
        wire = codec.encode(5, True, 123)
        info = codec.decode(wire, receiver_epoch=5)
        assert (info.epoch, info.am_logging, info.message_id) == (5, True, 123)

    def test_negative_rejected(self):
        with pytest.raises(PiggybackError):
            FullCodec().encode(-1, False, 0)

    def test_overhead_constant(self):
        assert FullCodec().overhead_bytes == 12


class TestPackedCodec:
    def test_single_int_wire(self):
        codec = PackedCodec()
        wire = codec.encode(4, False, 77)
        assert isinstance(wire, int)
        assert 0 <= wire < (1 << 32)

    def test_overhead_constant(self):
        assert PackedCodec().overhead_bytes == 4

    def test_same_epoch_decodes_exactly(self):
        codec = PackedCodec()
        info = codec.decode(codec.encode(6, True, 9), receiver_epoch=6)
        assert info.epoch == 6
        assert info.am_logging is True
        assert info.message_id == 9

    def test_adjacent_epoch_color(self):
        codec = PackedCodec()
        # Sender one epoch behind: different color.
        info = codec.decode(codec.encode(5, True, 0), receiver_epoch=6)
        assert info.color == 1
        assert info.epoch in (5, 7)


class TestFactory:
    def test_get_codec(self):
        assert isinstance(get_codec("full"), FullCodec)
        assert isinstance(get_codec("packed"), PackedCodec)

    def test_unknown(self):
        with pytest.raises(PiggybackError):
            get_codec("zipped")


@given(
    receiver_epoch=st.integers(0, 1000),
    delta=st.sampled_from([-1, 0, 1]),
    logging=st.booleans(),
    mid=st.integers(0, (1 << 30) - 1),
)
def test_packed_classification_equals_full(receiver_epoch, delta, logging, mid):
    """The paper's color optimisation: classification from the color bit
    must agree with classification from absolute epochs whenever the
    protocol invariant |sender_epoch - receiver_epoch| <= 1 holds.

    The receiver is logging exactly when a checkpoint wave can still have
    stragglers; in that window the different-color case is 'late', and
    outside it 'early' — mirroring classify_by_color's contract."""
    sender_epoch = receiver_epoch + delta
    if sender_epoch < 0:
        return
    expected = classify_by_epoch(sender_epoch, receiver_epoch)
    # Determine the receiver logging flag consistently with the protocol:
    # late messages only arrive while the receiver logs; early ones only
    # while it does not.
    if expected is MessageClass.LATE:
        receiver_logging = True
    elif expected is MessageClass.EARLY:
        receiver_logging = False
    else:
        receiver_logging = logging  # intra-epoch: either way
    got = classify_by_color(sender_epoch & 1, receiver_epoch, receiver_logging)
    assert got == expected


@given(
    epoch=st.integers(0, 10_000),
    logging=st.booleans(),
    mid=st.integers(0, (1 << 30) - 1),
)
def test_packed_roundtrip_same_epoch(epoch, logging, mid):
    codec = PackedCodec()
    info = codec.decode(codec.encode(epoch, logging, mid), receiver_epoch=epoch)
    assert info.epoch == epoch
    assert info.am_logging == logging
    assert info.message_id == mid
