"""Pseudo-handles and MPI-state record/replay (paper Section 5.2)."""

import pickle

import pytest

from repro.errors import ProtocolError, RecoveryError
from repro.protocol.mpi_state import CallRecord, HandleRegistry, MpiStateLog
from repro.protocol.pseudo_handles import PseudoHandle, PseudoRequest, RequestTable
from repro.protocol import C3Config, C3Layer
from repro.simmpi import SUM, run_simple
from repro.statesave import Storage


class TestPseudoRequest:
    def test_kind_validation(self):
        with pytest.raises(ProtocolError):
            PseudoRequest(kind="ibcast", req_id=0)

    def test_live_binding_never_pickled(self):
        req = PseudoRequest(kind="irecv", req_id=1, source=0, tag=5)
        req._live = object()  # unpicklable stand-in for a live request
        restored = pickle.loads(pickle.dumps(req))
        assert restored._live is None
        assert restored.source == 0 and restored.tag == 5


class TestRequestTable:
    def test_ids_monotone(self):
        table = RequestTable()
        a = table.new("isend", dest=1)
        b = table.new("irecv", source=0)
        assert b.req_id == a.req_id + 1

    def test_retire_removes(self):
        table = RequestTable()
        req = table.new("isend", dest=1)
        table.retire(req)
        assert req.consumed
        assert table.outstanding == {}

    def test_snapshot_excludes_retired(self):
        table = RequestTable()
        keep = table.new("irecv", source=0)
        gone = table.new("isend", dest=1)
        table.retire(gone)
        image = table.snapshot()
        assert [r.req_id for r in image] == [keep.req_id]

    def test_restore_continues_id_sequence(self):
        table = RequestTable()
        table.new("isend", dest=1)
        image = table.snapshot()
        fresh = RequestTable()
        fresh.restore(image)
        new = fresh.new("irecv", source=0)
        assert new.req_id > image[0].req_id


class TestMpiStateLog:
    def test_record_and_replay_order(self):
        log = MpiStateLog()
        h1 = log.new_handle("comm")
        log.record("comm_dup", (-1,), h1)
        h2 = log.new_handle("op")
        log.record("op_create", ("MYOP",), h2)
        log.record("attach_buffer", (1024,))

        calls = []
        executors = {
            "comm_dup": lambda parent: calls.append(("dup", parent)) or f"live-dup",
            "op_create": lambda name: calls.append(("op", name)) or f"live-op",
            "attach_buffer": lambda n: calls.append(("buf", n)),
        }
        handles = {h.handle_id: h for h in (h1, h2)}
        log.replay(executors, handles)
        assert calls == [("dup", -1), ("op", "MYOP"), ("buf", 1024)]
        assert h1._live == "live-dup"
        assert h2._live == "live-op"

    def test_replay_unknown_fn_rejected(self):
        log = MpiStateLog()
        log.records.append(CallRecord(fn="mystery", args=()))
        with pytest.raises(RecoveryError):
            log.replay({}, {})

    def test_replay_unknown_handle_rejected(self):
        log = MpiStateLog()
        log.records.append(CallRecord(fn="comm_dup", args=(-1,), handle_id=99))
        with pytest.raises(RecoveryError):
            log.replay({"comm_dup": lambda p: "x"}, {})

    def test_log_picklable(self):
        log = MpiStateLog()
        h = log.new_handle("comm")
        log.record("comm_dup", (-1,), h)
        restored = pickle.loads(pickle.dumps(log))
        assert restored.records[0].fn == "comm_dup"
        assert restored.next_handle_id == 1


class TestHandleRegistry:
    def test_snapshot_restore(self):
        reg = HandleRegistry()
        h = PseudoHandle(kind="comm", handle_id=3)
        reg.add(h)
        image = reg.snapshot()
        fresh = HandleRegistry()
        fresh.restore(image)
        assert fresh.by_id[3].kind == "comm"


class TestLayerPersistentObjects:
    def test_comm_dup_through_layer(self):
        storage = Storage()

        def main(ctx):
            layer = C3Layer(ctx.comm, C3Config(save_app_state=False), storage)
            sub = layer.comm_dup()
            total = layer.allreduce(ctx.rank, SUM, comm=sub)
            return (total, layer.comm_rank(sub), layer.comm_size(sub))

        result = run_simple(main, nprocs=3, seed=0)
        assert result.completed
        assert all(r == (3, rank, 3) for rank, r in enumerate(result.results))

    def test_comm_split_through_layer(self):
        storage = Storage()

        def main(ctx):
            layer = C3Layer(ctx.comm, C3Config(save_app_state=False), storage)
            sub = layer.comm_split(color=ctx.rank % 2)
            return layer.allreduce(1, SUM, comm=sub)

        result = run_simple(main, nprocs=4, seed=1)
        assert result.completed
        assert result.results == [2, 2, 2, 2]

    def test_op_create_and_attach_recorded(self):
        storage = Storage()

        def main(ctx):
            layer = C3Layer(ctx.comm, C3Config(save_app_state=False), storage)
            layer.op_create("concat-strings", lambda a, b: a + b)
            layer.attach_buffer(4096)
            return [r.fn for r in layer.mpi_log.records]

        result = run_simple(main, nprocs=2, seed=2)
        assert result.results[0] == ["op_create", "attach_buffer"]

    def test_persistent_objects_survive_recovery(self):
        """A communicator created before a checkpoint is usable after
        restart (recreated by call replay)."""
        from repro.runtime import RunConfig, run_with_recovery
        from repro.simmpi import FailureSchedule

        def app(ctx):
            sub = ctx.mpi.comm_dup()
            state = ctx.checkpointable_state(lambda: {"i": 0, "acc": 0})
            while state["i"] < 100:
                state["acc"] += ctx.mpi.allreduce(state["i"], SUM, comm=sub)
                state["i"] += 1
                ctx.potential_checkpoint()
            return state["acc"]

        cfg = RunConfig(nprocs=3, seed=5, checkpoint_interval=0.002,
                        detector_timeout=0.04)
        gold = run_with_recovery(app, cfg)
        out = run_with_recovery(app, cfg, failures=FailureSchedule.single(0.004, 1))
        assert out.results == gold.results
        assert out.attempts[1].started_from_epoch >= 1
