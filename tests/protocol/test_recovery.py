"""Recovery correctness: suppression, deterministic replay, and the
gold-standard invariant — recovery from any failure produces exactly the
failure-free result (paper Sections 3.2, 4.2, 5.2)."""

import pytest

from repro.runtime import RunConfig, Variant, run_with_recovery
from repro.simmpi import SUM, FailureSchedule, KillEvent


def ring_allreduce_app(n_iters=200):
    """A p2p + collective app drawing from the checkpointed RNG stream each
    round — randomness as ordinary application state (like a C ``rand``
    state living in checkpointed memory)."""

    def app(ctx):
        state = ctx.checkpointable_state(lambda: {"i": 0, "acc": 0.0, "trace": []})
        while state["i"] < n_iters:
            i = state["i"]
            right = (ctx.rank + 1) % ctx.size
            left = (ctx.rank - 1) % ctx.size
            ctx.mpi.send(float(i + ctx.rank), right, tag=1)
            v = ctx.mpi.recv(source=left, tag=1)
            noise = ctx.rng.random()
            total = ctx.mpi.allreduce(v + noise, SUM)
            state["acc"] += total
            if i % 16 == 0:
                state["trace"].append(round(total, 9))
            state["i"] += 1
            ctx.potential_checkpoint()
        return (state["acc"], tuple(state["trace"]))

    return app


CFG = dict(nprocs=4, seed=13, checkpoint_interval=0.003, detector_timeout=0.04)


@pytest.fixture(scope="module")
def gold():
    cfg = RunConfig(**CFG)
    return run_with_recovery(ring_allreduce_app(), cfg)


class TestGoldStandard:
    def test_failure_free_completes(self, gold):
        assert len(gold.attempts) == 1
        assert gold.checkpoints_committed >= 1

    @pytest.mark.parametrize("kill_time", [0.002, 0.006, 0.011, 0.017, 0.023])
    @pytest.mark.parametrize("victim", [0, 2])
    def test_recovery_equals_failure_free(self, gold, kill_time, victim):
        """Kill any rank (including the initiator) at assorted points —
        early epoch 0, mid-wave, during logging, late — and the final
        answer must be bit-identical to the failure-free run."""
        cfg = RunConfig(**CFG)
        out = run_with_recovery(
            ring_allreduce_app(), cfg,
            failures=FailureSchedule.single(kill_time, victim),
        )
        assert out.results == gold.results
        assert len(out.attempts) == 2
        assert out.attempts[0].failed and out.attempts[0].dead_ranks == (victim,)

    def test_restart_uses_committed_checkpoint(self, gold):
        cfg = RunConfig(**CFG)
        out = run_with_recovery(
            ring_allreduce_app(), cfg, failures=FailureSchedule.single(0.015, 1)
        )
        assert out.results == gold.results
        assert out.attempts[1].started_from_epoch >= 1

    def test_failure_before_first_commit_restarts_fresh(self, gold):
        cfg = RunConfig(**CFG)
        out = run_with_recovery(
            ring_allreduce_app(), cfg, failures=FailureSchedule.single(0.0005, 3)
        )
        assert out.results == gold.results
        assert out.attempts[1].started_from_epoch is None

    def test_repeated_failures(self, gold):
        """Several successive attempts each killed; progress still made via
        checkpoints, and the final answer is unchanged."""
        cfg = RunConfig(**CFG)
        out = run_with_recovery(
            ring_allreduce_app(), cfg,
            failures=FailureSchedule(
                [KillEvent(0.004, 0), KillEvent(0.007, 1), KillEvent(0.005, 2)]
            ),
        )
        assert out.results == gold.results

    def test_max_restarts_enforced(self):
        from repro.errors import RecoveryError

        cfg = RunConfig(max_restarts=0, **CFG)
        with pytest.raises(RecoveryError):
            run_with_recovery(
                ring_allreduce_app(), cfg,
                failures=FailureSchedule.single(0.005, 1),
            )


class TestCodecsAndOrderings:
    @pytest.mark.parametrize("codec", ["full", "packed"])
    def test_recovery_with_both_codecs(self, codec):
        cfg = RunConfig(codec=codec, **CFG)
        gold = run_with_recovery(ring_allreduce_app(120), cfg)
        out = run_with_recovery(
            ring_allreduce_app(120), cfg, failures=FailureSchedule.single(0.006, 2)
        )
        assert out.results == gold.results

    def test_recovery_under_random_ordering(self):
        """Section 3.3: no FIFO assumption — the protocol must survive a
        transport that reorders everything."""
        cfg = RunConfig(ordering="random", **CFG)
        gold = run_with_recovery(ring_allreduce_app(120), cfg)
        out = run_with_recovery(
            ring_allreduce_app(120), cfg, failures=FailureSchedule.single(0.006, 1)
        )
        assert out.results == gold.results


class TestNondeterminismReplay:
    def test_rng_draws_resume_midstream(self):
        """Randomness stored as checkpointed state must resume exactly where
        the checkpoint left it: recovery equals the failure-free run even
        though the app is 'random'."""
        def app(ctx):
            state = ctx.checkpointable_state(lambda: {"i": 0, "acc": 0.0})
            while state["i"] < 150:
                right = (ctx.rank + 1) % ctx.size
                draw = ctx.rng.random()
                ctx.mpi.send(draw, right, tag=2)
                got = ctx.mpi.recv(source=(ctx.rank - 1) % ctx.size, tag=2)
                state["acc"] += ctx.mpi.allreduce(got, SUM)
                state["i"] += 1
                ctx.potential_checkpoint()
            return round(state["acc"], 12)

        cfg = RunConfig(**CFG)
        gold = run_with_recovery(app, cfg)
        out = run_with_recovery(app, cfg, failures=FailureSchedule.single(0.008, 2))
        assert out.results == gold.results

    def test_true_nondeterminism_stays_globally_consistent(self):
        """For genuinely non-deterministic events (here: virtual-time reads,
        which differ between attempts) the C3 guarantee is *consistency*,
        not gold-equality: every rank must observe the same event values,
        because logged decisions are replayed to whoever's state depends on
        them (Section 3.2)."""
        def app(ctx):
            state = ctx.checkpointable_state(lambda: {"i": 0, "trace": []})
            while state["i"] < 120:
                if ctx.rank == 0:
                    stamp = ctx.nondet(lambda: round(ctx.wtime() * 1e7))
                    for dest in range(1, ctx.size):
                        ctx.mpi.send(stamp, dest, tag=3)
                else:
                    stamp = ctx.mpi.recv(source=0, tag=3)
                state["trace"].append(stamp)
                state["i"] += 1
                ctx.potential_checkpoint()
            return tuple(state["trace"])

        cfg = RunConfig(**CFG)
        out = run_with_recovery(app, cfg, failures=FailureSchedule.single(0.010, 2))
        # All ranks agree on every observed event value.
        assert len(set(out.results)) == 1


class TestVariantSemantics:
    def test_no_checkpoint_variants_replay_from_scratch(self):
        """PIGGYBACK variant takes no checkpoints: recovery restarts the
        whole computation, still yielding the right answer."""
        def app(ctx):
            state = ctx.checkpointable_state(lambda: {"i": 0, "acc": 0})
            while state["i"] < 60:
                state["acc"] += ctx.mpi.allreduce(state["i"], SUM)
                state["i"] += 1
                ctx.potential_checkpoint()
            return state["acc"]

        cfg = RunConfig(variant=Variant.PIGGYBACK, **CFG)
        gold = run_with_recovery(app, cfg)
        out = run_with_recovery(app, cfg, failures=FailureSchedule.single(0.002, 1))
        assert out.results == gold.results
        assert out.attempts[1].started_from_epoch is None
