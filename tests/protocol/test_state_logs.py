"""ProtocolState bookkeeping (Figure 4 variables) and the epoch logs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RecoveryError
from repro.protocol.logs import (
    CollectiveRecord,
    EpochLogs,
    LateMessageLog,
    LateRecord,
    MatchLog,
    MatchRecord,
    NondetLog,
)
from repro.protocol.state import ProtocolState
from repro.simmpi.constants import ANY_SOURCE, ANY_TAG


class TestProtocolState:
    def make(self, rank=0, nprocs=4):
        return ProtocolState(rank=rank, nprocs=nprocs)

    def test_initial_values_match_figure4(self):
        st_ = self.make()
        assert st_.epoch == 0
        assert st_.am_logging is False
        assert st_.next_message_id == 0
        assert st_.checkpoint_requested is False
        assert all(v == 0 for v in st_.send_count.values())
        assert all(v is None for v in st_.total_sent.values())

    def test_topology_excludes_self(self):
        st_ = self.make(rank=2)
        assert 2 not in st_.senders
        assert 2 not in st_.receivers
        assert len(st_.senders) == 3

    def test_note_send_sequences_ids(self):
        st_ = self.make()
        assert [st_.note_send(1) for _ in range(3)] == [0, 1, 2]
        assert st_.send_count[1] == 3

    def test_note_send_ids_shared_across_destinations(self):
        """nextMessageID is per process, not per destination (Figure 4)."""
        st_ = self.make()
        assert st_.note_send(1) == 0
        assert st_.note_send(2) == 1
        assert st_.send_count == {1: 1, 2: 1, 3: 0}

    def test_all_late_received_requires_totals(self):
        st_ = self.make()
        assert not st_.all_late_received()  # totals still unknown (⊥)
        for q in st_.senders:
            st_.total_sent[q] = 0
        assert st_.all_late_received()

    def test_all_late_received_counts(self):
        st_ = self.make()
        for q in st_.senders:
            st_.total_sent[q] = 2
            st_.previous_receive_count[q] = 2
        assert st_.all_late_received()
        st_.previous_receive_count[st_.senders[0]] = 1
        assert not st_.all_late_received()

    def test_epoch_transition_shifts_counters(self):
        st_ = self.make()
        st_.note_send(1)
        st_.note_send(1)
        st_.current_receive_count[2] = 5
        st_.early_ids[3] = [7, 8]
        counts = st_.epoch_transition()
        assert counts == {1: 2, 2: 0, 3: 0}
        assert st_.epoch == 1
        assert st_.previous_receive_count[2] == 5
        # Early messages belong to the new epoch (Figure 4):
        assert st_.current_receive_count[3] == 2
        assert st_.early_ids[3] == []
        assert st_.next_message_id == 0
        assert st_.send_count == {1: 0, 2: 0, 3: 0}

    def test_snapshot_normalised_for_restore(self):
        st_ = self.make()
        st_.epoch_transition()
        st_.am_logging = True
        st_.total_sent[1] = 3
        snap = st_.snapshot_for_checkpoint()
        assert snap.am_logging is False
        assert snap.total_sent[1] is None
        assert snap.epoch == st_.epoch
        # Deep copy: mutating the snapshot leaves the live state alone.
        snap.send_count[1] = 99
        assert st_.send_count[1] == 0


class TestCursorLogs:
    def test_nondet_replay_order(self):
        log = NondetLog()
        for v in (1, "two", 3.0):
            log.append(v)
        assert [log.next() for _ in range(3)] == [1, "two", 3.0]
        assert log.exhausted

    def test_next_past_end_raises(self):
        with pytest.raises(RecoveryError):
            NondetLog().next()

    def test_rewind(self):
        log = MatchLog()
        log.append(MatchRecord(0, 0, 0, False))
        log.next()
        log.rewind()
        assert not log.exhausted


class TestLateMessageLog:
    def make_log(self):
        log = LateMessageLog()
        log.append(LateRecord(source=1, tag=5, message_id=0, payload="a"))
        log.append(LateRecord(source=2, tag=5, message_id=0, payload="b"))
        log.append(LateRecord(source=1, tag=6, message_id=1, payload="c"))
        return log

    def test_take_by_id(self):
        log = self.make_log()
        rec = log.take_by_id(1, 1)
        assert rec.payload == "c"
        assert log.take_by_id(1, 1) is None  # consumed

    def test_take_matching_specific(self):
        log = self.make_log()
        rec = log.take_matching(1, 5, ANY_SOURCE, ANY_TAG)
        assert rec.payload == "a"

    def test_take_matching_wildcards(self):
        log = self.make_log()
        rec = log.take_matching(ANY_SOURCE, ANY_TAG, ANY_SOURCE, ANY_TAG)
        assert rec.payload == "a"  # oldest first

    def test_remaining_and_exhausted(self):
        log = self.make_log()
        assert log.remaining() == 3
        log.take_by_id(1, 0)
        log.take_by_id(2, 0)
        log.take_by_id(1, 1)
        assert log.exhausted

    def test_rewind(self):
        log = self.make_log()
        log.take_by_id(1, 0)
        log.rewind()
        assert log.remaining() == 3


class TestEpochLogs:
    def test_all_exhausted(self):
        logs = EpochLogs(epoch=3)
        assert logs.all_exhausted()
        logs.nondet.append(1)
        assert not logs.all_exhausted()
        logs.nondet.next()
        assert logs.all_exhausted()

    def test_summary(self):
        logs = EpochLogs(epoch=1)
        logs.late.append(LateRecord(0, 0, 0, None))
        logs.collectives.append(CollectiveRecord("allreduce", 1.0))
        assert logs.summary() == {
            "late": 1, "nondet": 0, "matches": 0, "collectives": 1,
        }


@given(sends=st.lists(st.integers(1, 3), max_size=40))
def test_message_id_uniqueness_property(sends):
    """Within one epoch every (sender, messageID) pair is unique — the basis
    for early-ID suppression and replay matching."""
    st_ = ProtocolState(rank=0, nprocs=4)
    ids = [st_.note_send(dest) for dest in sends]
    assert len(set(ids)) == len(ids)
    assert ids == sorted(ids)
