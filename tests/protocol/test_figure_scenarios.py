"""Directed scenario tests for the paper's figures.

These reconstruct the exact situations the paper draws:

* Figure 3 — the three message classes on concrete executions;
* Figure 4 — the communicationEventHandler actions, fed crafted envelopes;
* Figure 5 — collective calls spanning a checkpoint (case A: a participant
  has not yet checkpointed ⇒ results must be logged).
"""

import pytest

from repro.errors import ProtocolError
from repro.protocol import C3Config, C3Layer
from repro.simmpi import SUM, run_simple
from repro.simmpi.message import Envelope
from repro.statesave import Storage


def wire(ctx, storage, **kw):
    return C3Layer(ctx.comm, C3Config(save_app_state=False, **kw), storage)


def craft(layer, source, epoch, am_logging, message_id, tag=1, payload="x"):
    """An envelope as the layer would receive it from ``source``."""
    return Envelope(
        source=source,
        dest=layer.rank,
        tag=tag,
        context=0,
        payload=payload,
        piggyback=layer.codec.encode(epoch, am_logging, message_id),
    )


class TestFigure4Handler:
    """Unit-feeds to _classify_and_deliver inside a one-rank simulation
    (the layer needs a live comm for its control sends)."""

    def _with_layer(self, body, nprocs=2, codec="packed"):
        storage = Storage()

        def main(ctx):
            if ctx.rank == 0:
                layer = wire(ctx, storage, codec=codec)
                return body(layer, storage)
            return None

        result = run_simple(main, nprocs=nprocs, seed=0)
        assert result.completed
        return result.results[0]

    def test_intra_epoch_message_counted(self):
        def body(layer, storage):
            env = craft(layer, source=1, epoch=0, am_logging=False, message_id=0)
            layer._classify_and_deliver(env)
            return layer.state.current_receive_count[1]

        assert self._with_layer(body) == 1

    def test_early_message_records_id(self):
        def body(layer, storage):
            # Sender already in epoch 1, this rank still in epoch 0.
            env = craft(layer, source=1, epoch=1, am_logging=True, message_id=7)
            layer._classify_and_deliver(env)
            return list(layer.state.early_ids[1])

        assert self._with_layer(body) == [7]

    def test_early_while_logging_is_protocol_violation(self):
        # Only the full codec carries the absolute epoch needed to detect
        # this impossible combination; the packed color bit intentionally
        # folds it into the late case (paper Section 4.2's disambiguation
        # relies on the invariant holding).
        def body(layer, storage):
            layer.state.am_logging = True
            env = craft(layer, source=1, epoch=1, am_logging=True, message_id=0)
            with pytest.raises(ProtocolError, match="early"):
                layer._classify_and_deliver(env)
            return True

        assert self._with_layer(body, codec="full")

    def test_late_message_logged_and_counted(self):
        def body(layer, storage):
            layer.state.epoch = 1
            layer.state.am_logging = True
            env = craft(layer, source=1, epoch=0, am_logging=True,
                        message_id=3, payload=[1, 2])
            layer._classify_and_deliver(env)
            rec = layer.logs.late.records[0]
            return (rec.source, rec.message_id, rec.payload,
                    layer.state.previous_receive_count[1])

        assert self._with_layer(body) == (1, 3, [1, 2], 1)

    def test_late_after_logging_ended_is_protocol_violation(self):
        def body(layer, storage):
            layer.state.epoch = 1  # not logging
            env = craft(layer, source=1, epoch=0, am_logging=True, message_id=0)
            with pytest.raises(ProtocolError, match="late"):
                layer._classify_and_deliver(env)
            return True

        assert self._with_layer(body, codec="full")

    def test_intra_from_non_logging_sender_terminates_logging(self):
        """Phase 4 condition (ii): hearing from a process that stopped
        logging means every process has checkpointed."""
        def body(layer, storage):
            layer.state.epoch = 1
            layer.state.am_logging = True
            layer.logs.epoch = 1
            env = craft(layer, source=1, epoch=1, am_logging=False, message_id=0)
            layer._classify_and_deliver(env)
            return (layer.state.am_logging, layer.stats.log_finalizations)

        # Logging terminated exactly once, by the message.
        assert self._with_layer(body) == (False, 1)

    def test_logged_payload_immune_to_mutation(self):
        """The log deep-copies payloads: the application mutating a received
        object must not corrupt the replay log."""
        def body(layer, storage):
            layer.state.epoch = 1
            layer.state.am_logging = True
            payload = [1, 2]
            env = craft(layer, source=1, epoch=0, am_logging=True,
                        message_id=0, payload=payload)
            out = layer._classify_and_deliver(env)
            out.append(999)  # app mutates its copy
            return layer.logs.late.records[0].payload

        assert self._with_layer(body) == [1, 2]

    def test_match_record_written_while_logging(self):
        def body(layer, storage):
            layer.state.epoch = 1
            layer.state.am_logging = True
            env = craft(layer, source=1, epoch=1, am_logging=True, message_id=5)
            layer._classify_and_deliver(env)
            rec = layer.logs.matches.records[0]
            return (rec.source, rec.message_id, rec.was_late)

        assert self._with_layer(body) == (1, 5, False)


class TestFigure3Classes:
    """End-to-end: all three message classes arise in one checkpoint wave
    and land in the right books."""

    def test_wave_produces_late_and_early_messages(self):
        storage = Storage()

        def main(ctx):
            layer = wire(ctx, storage)
            if ctx.rank == 0:
                layer.request_checkpoint_now()
            # Heavy cross-traffic while the wave is in flight maximises the
            # chance of late/early classifications at *some* rank.
            for i in range(120):
                layer.send(i, (ctx.rank + 1) % ctx.size, tag=1)
                layer.send(i, (ctx.rank + 2) % ctx.size, tag=2)
                layer.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
                layer.recv(source=(ctx.rank - 2) % ctx.size, tag=2)
                if i % 3 == ctx.rank % 3:
                    layer.potential_checkpoint()
            return (layer.stats.late_logged, layer.stats.early_recorded)

        # Random delivery ordering stirs the pot.
        result = run_simple(main, nprocs=3, seed=12, ordering="random")
        assert result.completed
        late_total = sum(r[0] for r in result.results)
        assert late_total > 0, "no late messages arose; scenario too tame"
        epoch = storage.committed_epoch()
        assert epoch == 1

    def test_early_ids_saved_in_checkpoint(self):
        storage = Storage()
        seen = {}

        def main(ctx):
            layer = wire(ctx, storage)
            layer.on_checkpoint = lambda data: seen.setdefault(ctx.rank, data)
            if ctx.rank == 0:
                layer.request_checkpoint_now()
            for i in range(100):
                layer.send(i, (ctx.rank + 1) % ctx.size, tag=1)
                layer.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
                # Rank 1 drags its feet so rank 0's epoch-1 messages reach
                # it early (before its own checkpoint).
                if ctx.rank == 0 or i > 40:
                    layer.potential_checkpoint()
            return layer.stats.early_recorded

        result = run_simple(main, nprocs=2, seed=3)
        assert result.completed
        early_at_1 = result.results[1]
        if early_at_1:  # classification depends on timing; if it happened:
            data = seen[1]
            assert sum(len(v) for v in data.early_ids.values()) > 0


class TestFigure5Collectives:
    def test_case_a_result_logged_when_peer_not_yet_checkpointed(self):
        """Call A: P (post-checkpoint, logging) and R (pre-checkpoint) in
        one allreduce ⇒ P must log the result."""
        storage = Storage()

        def main(ctx):
            layer = wire(ctx, storage)
            if ctx.rank == 0:
                layer.request_checkpoint_now()
            # Rank 0 checkpoints before the collective; rank 1 only after.
            if ctx.rank == 0:
                layer.potential_checkpoint()     # -> epoch 1, logging
            r = layer.allreduce(ctx.rank + 1, SUM)
            if ctx.rank == 1:
                layer.potential_checkpoint()     # now catches up
            # Drain the wave.
            for i in range(30):
                layer.send(i, 1 - ctx.rank, tag=4)
                layer.recv(source=1 - ctx.rank, tag=4)
                layer.potential_checkpoint()
            return (r, layer.stats.collective_results_logged)

        result = run_simple(main, nprocs=2, seed=1)
        assert result.completed
        assert result.results[0][0] == 3  # correct allreduce value
        assert result.results[0][1] >= 1, "rank 0 failed to log case-A result"
        # The logged record is in rank 0's stable-storage epoch-1 log.
        logs = storage.read_log(0, 1)
        assert any(r.kind == "allreduce" and r.result == 3
                   for r in logs.collectives.records)
