"""In-simulation protocol layer tests: checkpoint waves, logging, counters.

These run real multi-rank programs inside the simulator with manually wired
C3 layers, checking Figure 4's observable behaviour: wave completion, log
content, message classification effects, and the mySendCount bookkeeping.
"""

import pytest

from repro.protocol import C3Config, C3Layer
from repro.simmpi import run_simple
from repro.statesave import Storage


def wire(ctx, storage, interval=None, **cfg_kwargs):
    cfg = C3Config(checkpoint_interval=interval, save_app_state=False, **cfg_kwargs)
    return C3Layer(ctx.comm, cfg, storage)


class TestWaveCompletion:
    def test_single_wave_commits(self):
        storage = Storage()

        def main(ctx):
            layer = wire(ctx, storage)
            if ctx.rank == 0:
                layer.request_checkpoint_now()
            for i in range(40):
                layer.send(i, (ctx.rank + 1) % ctx.size, tag=1)
                layer.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
                layer.potential_checkpoint()
            return (layer.state.epoch, layer.stats.checkpoints_taken)

        result = run_simple(main, nprocs=4, seed=0)
        assert result.completed
        assert storage.committed_epoch() == 1
        assert all(r == (1, 1) for r in result.results)

    def test_interval_driven_waves(self):
        storage = Storage()

        def main(ctx):
            layer = wire(ctx, storage, interval=0.002)
            for i in range(150):
                layer.send(i, (ctx.rank + 1) % ctx.size, tag=1)
                layer.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
                layer.potential_checkpoint()
            return layer.state.epoch

        result = run_simple(main, nprocs=3, seed=1)
        assert result.completed
        epochs = set(result.results)
        assert len(epochs) == 1
        assert storage.committed_epoch() >= 2

    def test_every_rank_state_and_log_on_disk(self, tmp_path):
        storage = Storage(str(tmp_path))

        def main(ctx):
            layer = wire(ctx, storage)
            if ctx.rank == 0:
                layer.request_checkpoint_now()
            for i in range(30):
                layer.send(i, (ctx.rank + 1) % ctx.size, tag=1)
                layer.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
                layer.potential_checkpoint()
            return layer.state.epoch

        result = run_simple(main, nprocs=3, seed=2)
        assert result.completed
        epoch = storage.committed_epoch()
        assert storage.has_complete_epoch(3, epoch)
        data = storage.read_state(1, epoch)
        assert data.rank == 1 and data.epoch == epoch

    def test_gc_keeps_only_committed(self):
        storage = Storage()

        def main(ctx):
            layer = wire(ctx, storage, interval=0.001)
            for i in range(200):
                layer.send(i, (ctx.rank + 1) % ctx.size, tag=1)
                layer.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
                layer.potential_checkpoint()
            return layer.state.epoch

        run_simple(main, nprocs=2, seed=3)
        committed = storage.committed_epoch()
        assert committed >= 2
        # Only the committed epoch's objects survive garbage collection.
        assert storage.has_complete_epoch(2, committed)
        assert not storage.store.has_generation("rank0/state", committed - 1)


class TestLegacyStorageCompat:
    def test_two_argument_commit_still_supported(self):
        """Custom storages implementing the pre-1.2 ``commit(epoch, vt)``
        signature must keep working under the layer's commit path."""

        class LegacyStorage(Storage):
            def commit(self, epoch, virtual_time):  # no nprocs kwarg
                return super().commit(epoch, virtual_time)

        storage = LegacyStorage()

        def main(ctx):
            layer = wire(ctx, storage, interval=0.001)
            for i in range(60):
                layer.send(i, (ctx.rank + 1) % ctx.size, tag=1)
                layer.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
                layer.potential_checkpoint()
            return layer.state.epoch

        result = run_simple(main, nprocs=2, seed=1)
        assert result.completed
        assert storage.committed_epoch() is not None


class TestLoggingBehaviour:
    def test_logging_starts_at_checkpoint_and_stops(self):
        storage = Storage()

        def main(ctx):
            layer = wire(ctx, storage)
            if ctx.rank == 0:
                layer.request_checkpoint_now()
            saw_logging = False
            for i in range(60):
                layer.send(i, (ctx.rank + 1) % ctx.size, tag=1)
                layer.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
                layer.potential_checkpoint()
                saw_logging = saw_logging or layer.state.am_logging
            return (saw_logging, layer.state.am_logging, layer.stats.log_finalizations)

        result = run_simple(main, nprocs=3, seed=4)
        assert result.completed
        for saw, still, finals in result.results:
            assert saw, "rank never entered the logging window"
            assert not still, "logging never terminated"
            assert finals == 1

    def test_match_records_written_while_logging(self):
        storage = Storage()

        def main(ctx):
            layer = wire(ctx, storage)
            if ctx.rank == 0:
                layer.request_checkpoint_now()
            for i in range(50):
                layer.send(i, (ctx.rank + 1) % ctx.size, tag=1)
                layer.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
                layer.potential_checkpoint()
            return None

        result = run_simple(main, nprocs=2, seed=5)
        assert result.completed
        epoch = storage.committed_epoch()
        logs = storage.read_log(0, epoch)
        # Some receives happened inside the logging window.
        assert len(logs.matches) > 0
        # Every late record is referenced by a match record.
        late_ids = {(r.source, r.message_id) for r in logs.late.records}
        match_late = {
            (m.source, m.message_id) for m in logs.matches.records if m.was_late
        }
        assert late_ids == match_late

    def test_nondet_logged_only_while_logging(self):
        storage = Storage()

        def main(ctx):
            layer = wire(ctx, storage)
            layer.nondet(lambda: 1)  # before any checkpoint: not logged
            if ctx.rank == 0:
                layer.request_checkpoint_now()
            for i in range(40):
                layer.send(i, (ctx.rank + 1) % ctx.size, tag=1)
                layer.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
                layer.potential_checkpoint()
                layer.nondet(lambda: i)
            return layer.stats.nondet_logged

        result = run_simple(main, nprocs=2, seed=6)
        assert result.completed
        for logged in result.results:
            assert logged > 0


class TestVariantConfigs:
    def test_piggyback_only_never_checkpoints(self):
        storage = Storage()

        def main(ctx):
            layer = wire(ctx, storage)  # no interval, no force
            for i in range(30):
                layer.send(i, (ctx.rank + 1) % ctx.size, tag=1)
                layer.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
                layer.potential_checkpoint()
            return (layer.state.epoch, layer.stats.checkpoints_taken)

        result = run_simple(main, nprocs=2, seed=7)
        assert result.completed
        assert all(r == (0, 0) for r in result.results)
        assert storage.committed_epoch() is None

    def test_unpiggybacked_mode(self):
        storage = Storage()

        def main(ctx):
            cfg = C3Config(protocol_enabled=False, piggyback_enabled=False,
                           save_app_state=False)
            layer = C3Layer(ctx.comm, cfg, storage)
            layer.send("x", 1 - ctx.rank, tag=1)
            return layer.recv(source=1 - ctx.rank, tag=1)

        result = run_simple(main, nprocs=2, seed=8)
        assert result.completed
        assert result.results == ["x", "x"]

    @pytest.mark.parametrize("codec", ["full", "packed"])
    def test_both_codecs_complete_waves(self, codec):
        storage = Storage()

        def main(ctx):
            layer = wire(ctx, storage, interval=0.002, codec=codec)
            for i in range(80):
                layer.send(i, (ctx.rank + 1) % ctx.size, tag=1)
                layer.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
                layer.potential_checkpoint()
            return layer.state.epoch

        result = run_simple(main, nprocs=3, seed=9)
        assert result.completed
        assert storage.committed_epoch() >= 1
