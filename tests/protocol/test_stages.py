"""Stage pipeline: variant stacks, registries, per-stage observability.

Pins the paper-faithful V0-V3 stage compositions (the V1 regression: the
protocol layer is *active* under V1 — "Using Protocol Layer, No
Checkpoints" — it simply has no checkpoint stage and never initiates a
wave), the open stage/stack registries, and the per-stage overhead
counters the flat layer could not provide.
"""

import pytest

from repro.api.session import Session
from repro.errors import ConfigError
from repro.protocol import (
    C3Config,
    C3Layer,
    register_stack,
    register_stage,
    variant_stack,
)
from repro.protocol.stages import (
    FULL_STACK,
    PROTOCOL_STAGES,
    ProtocolStage,
    build_stages,
    list_stacks,
    list_stages,
    stages_for_config,
)
from repro.runtime import RunConfig, Variant, run_with_recovery
from repro.simmpi import SUM, run_simple
from repro.statesave import Storage


class TestVariantStacksPinned:
    """Regression for the V1 semantics mismatch (docstring vs c3_config)."""

    def test_v0_is_the_empty_stack(self):
        assert variant_stack("V0").stages == ()

    def test_v1_is_protocol_without_checkpoint(self):
        """Paper: V1 = "Using Protocol Layer, No Checkpoints" — the layer
        (piggyback, classification, logging machinery) is active, but no
        checkpoint stage exists and no wave can ever start."""
        spec = variant_stack("V1")
        assert spec.stages == (
            "piggyback", "classifier", "message-log", "result-log", "replay"
        )
        assert "checkpoint" not in spec.stages

    def test_v2_v3_differ_only_in_app_state(self):
        v2, v3 = variant_stack("V2"), variant_stack("V3")
        assert v2.stages == v3.stages == PROTOCOL_STAGES + ("checkpoint",)
        assert v2.save_app_state is False
        assert v3.save_app_state is True

    def test_variant_enum_values_resolve(self):
        for variant, name in [
            (Variant.UNMODIFIED, "V0"), (Variant.PIGGYBACK, "V1"),
            (Variant.NO_APP_STATE, "V2"), (Variant.FULL, "V3"),
        ]:
            assert variant_stack(variant.value).name == name
            assert RunConfig(nprocs=2, variant=variant).stack_spec().name == name

    def test_v1_c3_config_agrees_with_docstring(self):
        """Code and docs now agree: V1 has the protocol *enabled* and the
        checkpoint interval forced to None."""
        cfg = variant_stack("V1").c3_config(RunConfig(nprocs=2, checkpoint_interval=0.5))
        assert cfg.protocol_enabled
        assert cfg.piggyback_enabled
        assert cfg.checkpoint_interval is None
        assert not cfg.save_app_state
        assert "protocol layer is active" in C3Config.__doc__
        assert "``protocol_enabled=True``" in C3Config.__doc__

    def test_c3_config_method_is_deprecated_but_equivalent(self):
        run_cfg = RunConfig(nprocs=2, variant=Variant.NO_APP_STATE,
                            checkpoint_interval=0.5)
        with pytest.warns(DeprecationWarning, match="stack_spec"):
            legacy = run_cfg.c3_config()
        assert legacy == run_cfg.stack_spec().c3_config(run_cfg)

    def test_active_stages_per_variant_in_a_live_run(self):
        """End-to-end pin: which stages actually dispatch under each
        variant (stage_calls keys == the declared stack)."""

        def app(ctx):
            acc = 0
            for i in range(10):
                acc += ctx.mpi.allreduce(i, SUM)
                ctx.potential_checkpoint()
            return acc

        for variant in Variant:
            cfg = RunConfig(nprocs=2, seed=2, variant=variant,
                            checkpoint_interval=0.002, detector_timeout=0.04)
            out = run_with_recovery(app, cfg)
            expected = set(cfg.stack_spec().stages)
            assert set(out.stage_totals()) == expected, variant


class TestRegistries:
    def test_builtin_stages_registered(self):
        assert set(FULL_STACK) <= set(list_stages())

    def test_builtin_stacks_registered(self):
        assert {"V0", "V1", "V2", "V3"} <= set(list_stacks())

    def test_unknown_stack_rejected(self):
        with pytest.raises(ConfigError, match="unknown variant stack"):
            variant_stack("V9")

    def test_duplicate_stack_requires_replace(self):
        register_stack("test-dup-stack", (), replace=True)
        with pytest.raises(ConfigError, match="already registered"):
            register_stack("test-dup-stack", ())
        register_stack("test-dup-stack", (), replace=True)

    def test_duplicate_stage_requires_replace(self):
        register_stage("test-dup-stage", ProtocolStage, replace=True)
        with pytest.raises(ConfigError, match="already registered"):
            register_stage("test-dup-stage", ProtocolStage)

    def test_unknown_stage_in_stack_rejected_at_build(self):
        with pytest.raises(ConfigError, match="unknown protocol stage"):
            build_stages(("no-such-stage",), C3Config())

    def test_stage_dependencies_validated(self):
        storage = Storage()

        def main(ctx):
            cfg = C3Config()
            with pytest.raises(ConfigError, match="requires stages"):
                C3Layer(ctx.comm, cfg, storage, stack=("classifier",))
            with pytest.raises(ConfigError, match="requires stages"):
                C3Layer(ctx.comm, cfg, storage,
                        stack=PROTOCOL_STAGES[:1] + ("checkpoint",))
            return True

        assert run_simple(main, nprocs=1, seed=0).results == [True]

    def test_legacy_flag_derivation(self):
        assert stages_for_config(C3Config(protocol_enabled=True)) == FULL_STACK
        assert stages_for_config(
            C3Config(protocol_enabled=False, piggyback_enabled=True)
        ) == ("piggyback",)
        assert stages_for_config(
            C3Config(protocol_enabled=False, piggyback_enabled=False)
        ) == ()


class TestPerStageObservability:
    def _run(self, variant=Variant.FULL):
        def app(ctx):
            state = ctx.checkpointable_state(lambda: {"i": 0})
            peer = (ctx.rank + 1) % ctx.size
            while state["i"] < 20:
                ctx.mpi.send(state["i"], peer, tag=1)
                ctx.mpi.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
                ctx.nondet(lambda: 1)
                state["i"] += 1
                ctx.potential_checkpoint()
            return state["i"]

        cfg = RunConfig(nprocs=3, seed=8, variant=variant,
                        checkpoint_interval=0.002, detector_timeout=0.04)
        return run_with_recovery(app, cfg)

    def test_stage_counters_populated(self):
        out = self._run()
        totals = out.stage_totals()
        # Point-to-point traffic drives piggyback/classifier/message-log.
        assert totals["piggyback"]["calls"] > 0
        assert totals["classifier"]["calls"] > 0
        assert totals["message-log"]["calls"] > 0
        # The checkpoint stage progressed on every call.
        assert totals["checkpoint"]["calls"] > 0
        # No failure, so nothing was replayed.
        assert totals["replay"]["calls"] == 0
        assert all(t["seconds"] >= 0.0 for t in totals.values())

    def test_per_rank_stats_carry_stage_counters(self):
        out = self._run()
        for stats in out.layer_stats:
            assert set(stats.stage_calls) == set(FULL_STACK)
            assert stats.stage_calls["piggyback"] > 0

    def test_v0_has_no_stage_dispatch(self):
        out = self._run(Variant.UNMODIFIED)
        assert out.stage_totals() == {}

    def test_sweep_table_surfaces_stage_columns(self):
        def app(ctx):
            return ctx.mpi.allreduce(1, SUM)

        rows = Session().sweep(
            app,
            RunConfig(nprocs=2, checkpoint_interval=0.002, detector_timeout=0.04),
            variants=(Variant.UNMODIFIED, Variant.FULL),
            parallel=False,
        ).table()
        v0_row, v3_row = rows
        assert v0_row["stage_calls"] == {}
        assert v3_row["stage_calls"]["checkpoint"] > 0
        assert set(v3_row["stage_seconds"]) == set(FULL_STACK)
