"""Protocol-layer collectives: result logging, conjunction, barrier alignment
(paper Section 4.5 / Figure 5)."""

from repro.protocol import C3Config, C3Layer
from repro.simmpi import SUM, run_simple
from repro.statesave import Storage


def wire(ctx, storage, interval=None):
    cfg = C3Config(checkpoint_interval=interval, save_app_state=False)
    return C3Layer(ctx.comm, cfg, storage)


class TestCollectiveCorrectness:
    def test_all_collectives_through_layer(self):
        storage = Storage()

        def main(ctx):
            layer = wire(ctx, storage, interval=0.002)
            out = []
            for i in range(25):
                out.append(layer.allreduce(ctx.rank + i, SUM))
                out.append(tuple(layer.allgather(ctx.rank)))
                out.append(layer.bcast(i if ctx.rank == 1 else None, root=1))
                out.append(layer.reduce(1, SUM, root=0))
                sc = layer.scatter(list(range(ctx.size)) if ctx.rank == 0 else None)
                out.append(sc)
                layer.barrier()
                layer.potential_checkpoint()
            return out

        result = run_simple(main, nprocs=4, seed=0)
        assert result.completed
        # Five entries per iteration: allreduce, allgather, bcast, reduce,
        # scatter.  The first three must agree across ranks; reduce is
        # root-only and scatter is rank-specific.
        for i in range(25):
            assert len({r[i * 5] for r in result.results}) == 1      # allreduce
            assert len({r[i * 5 + 1] for r in result.results}) == 1  # allgather
            assert len({r[i * 5 + 2] for r in result.results}) == 1  # bcast
            assert result.results[0][i * 5 + 3] == 4                 # reduce@root
            for rank, r in enumerate(result.results):
                assert r[i * 5 + 4] == rank                          # scatter

    def test_command_exchange_precedes_data(self):
        """The paper: every data collective is preceded by a command
        collective, visible as roughly doubled message counts vs raw."""
        storage = Storage()

        def with_layer(ctx):
            layer = wire(ctx, storage)
            for _ in range(10):
                layer.allgather(ctx.rank)
            return None

        def raw(ctx):
            for _ in range(10):
                ctx.comm.allgather(ctx.rank)
            return None

        layered = run_simple(with_layer, nprocs=4, seed=1)
        plain = run_simple(raw, nprocs=4, seed=1)
        assert layered.network.delivered >= 1.8 * plain.network.delivered


class TestResultLogging:
    def test_results_logged_while_logging(self):
        storage = Storage()

        def main(ctx):
            layer = wire(ctx, storage)
            if ctx.rank == 0:
                layer.request_checkpoint_now()
            logged = 0
            for i in range(40):
                layer.allreduce(i, SUM)
                layer.potential_checkpoint()
                logged = max(logged, layer.stats.collective_results_logged)
            return logged

        result = run_simple(main, nprocs=3, seed=2)
        assert result.completed
        assert all(v > 0 for v in result.results)

    def test_logged_results_in_stable_storage(self):
        storage = Storage()

        def main(ctx):
            layer = wire(ctx, storage)
            if ctx.rank == 0:
                layer.request_checkpoint_now()
            for i in range(40):
                layer.allreduce(i, SUM)
                layer.potential_checkpoint()
            return None

        result = run_simple(main, nprocs=2, seed=3)
        assert result.completed
        epoch = storage.committed_epoch()
        logs = storage.read_log(0, epoch)
        assert len(logs.collectives) > 0
        assert all(r.kind == "allreduce" for r in logs.collectives.records)

    def test_barrier_never_logged(self):
        storage = Storage()

        def main(ctx):
            layer = wire(ctx, storage)
            if ctx.rank == 0:
                layer.request_checkpoint_now()
            for i in range(30):
                layer.barrier()
                layer.potential_checkpoint()
            return None

        result = run_simple(main, nprocs=2, seed=4)
        assert result.completed
        epoch = storage.committed_epoch()
        for rank in range(2):
            logs = storage.read_log(rank, epoch)
            assert all(r.kind != "barrier" for r in logs.collectives.records)


class TestBarrierAlignment:
    def test_barrier_forces_laggard_checkpoint(self):
        """Section 4.5: a process reaching a barrier behind its peers'
        epoch takes its local checkpoint first, so the barrier executes
        with all participants in the same epoch."""
        storage = Storage()

        def main(ctx):
            layer = wire(ctx, storage)
            if ctx.rank == 0:
                layer.request_checkpoint_now()
            # Rank 0 checkpoints eagerly at the next potential checkpoint;
            # rank 1 NEVER calls potential_checkpoint before the barrier, so
            # only the barrier alignment can advance its epoch.
            if ctx.rank == 0:
                for _ in range(5):
                    layer.send(1, 1, tag=1)
                    layer.potential_checkpoint()
                layer.barrier()
            else:
                for _ in range(5):
                    layer.recv(source=0, tag=1)
                layer.barrier()
            return layer.state.epoch

        result = run_simple(main, nprocs=2, seed=5)
        assert result.completed
        assert result.results == [1, 1]

    def test_aligned_barrier_no_extra_checkpoint(self):
        storage = Storage()

        def main(ctx):
            layer = wire(ctx, storage)
            for _ in range(5):
                layer.barrier()
            return (layer.state.epoch, layer.stats.checkpoints_taken)

        result = run_simple(main, nprocs=3, seed=6)
        assert result.completed
        assert all(r == (0, 0) for r in result.results)
