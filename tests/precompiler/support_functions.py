"""A corpus of module-level functions for precompiler tests.

``inspect.getsource`` needs real files, so every function the transform
tests feed to :class:`Precompiler` lives here.  Each is written to exercise
a specific construct: loops, branches, break/continue, nesting, recursion,
atomic inner loops, expression-embedded calls.
"""

from __future__ import annotations


def leaf(ctx, x):
    y = x + 1
    ctx.potential_checkpoint()
    return y


def plain_math(a, b):
    """Not checkpoint-reaching: must be left untransformed."""
    return a * b + 1


def straight_line(ctx):
    a = 1
    b = a + 2
    c = leaf(ctx, b)
    d = c * 2
    return d


def branches(ctx, n):
    total = 0
    for i in range(n):
        if i % 3 == 0:
            total += leaf(ctx, i)
        elif i % 3 == 1:
            total -= i
        else:
            total *= 2
    return total


def nested_loops(ctx, n):
    total = 0
    i = 0
    while i < n:
        for j in range(i):
            total += leaf(ctx, j)
        i += 1
    return total


def break_continue(ctx, n):
    total = 0
    for i in range(n):
        if i == 7:
            break
        if i % 2 == 0:
            continue
        total += leaf(ctx, i)
    return total


def atomic_inner_loop(ctx, n):
    total = 0
    for i in range(n):
        total += leaf(ctx, i)
        # This inner loop has no checkpointable call: stays native, and its
        # break must NOT be rewritten to a dispatch jump.
        for j in range(10):
            if j > 3:
                break
            total += j
    return total


def expression_calls(ctx, n):
    total = 0
    for i in range(n):
        total += leaf(ctx, i) + leaf(ctx, i + 1)
        value = plain_math(leaf(ctx, total % 5), 2)
        total += value
    return total


def returns_call(ctx, x):
    return leaf(ctx, x) * 3


def recursive(ctx, n):
    if n <= 0:
        ctx.potential_checkpoint()
        return 0
    return n + recursive(ctx, n - 1)


def while_with_call_test(ctx, n):
    count = 0
    while leaf(ctx, count) < n:
        count += 1
    return count


def uses_docstring(ctx):
    """Docstring should survive."""
    x = leaf(ctx, 1)
    return x


def caller_of_caller(ctx, n):
    return branches(ctx, n) + straight_line(ctx)


def loop_over_list(ctx, values):
    total = 0
    for v in values:
        total += leaf(ctx, v)
    return total


def aug_assign_with_call(ctx, n):
    total = 100
    total -= leaf(ctx, n)
    total *= 2
    return total


# --- functions that must be REJECTED -------------------------------------


def bad_try(ctx):
    try:
        leaf(ctx, 1)
    except ValueError:
        pass


def bad_with(ctx):
    with open("/dev/null") as fh:
        leaf(ctx, 1)


def bad_nested_def(ctx):
    def inner():
        return leaf(ctx, 1)

    return inner()


def bad_boolop(ctx, flag):
    return flag and leaf(ctx, 1)


def bad_comprehension(ctx, n):
    return sum(leaf(ctx, i) for i in range(n))


def bad_generator(ctx):
    yield leaf(ctx, 1)


def ok_try_without_call(ctx):
    """try is fine as long as no checkpointable call is inside."""
    total = 0
    try:
        total = int("3")
    except ValueError:
        total = -1
    total += leaf(ctx, total)
    return total
