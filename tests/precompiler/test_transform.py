"""Transform semantics: every transformed function must behave exactly like
its original under plain execution (no active runtime), and the analysis
must classify/reject constructs per the documented subset."""

import pytest

from repro.errors import UnsupportedConstructError
from repro.precompiler import Precompiler

from tests.precompiler import support_functions as sf


class DummyCtx:
    def potential_checkpoint(self):
        pass


FULL_UNIT = [
    sf.leaf,
    sf.plain_math,
    sf.straight_line,
    sf.branches,
    sf.nested_loops,
    sf.break_continue,
    sf.atomic_inner_loop,
    sf.expression_calls,
    sf.returns_call,
    sf.recursive,
    sf.while_with_call_test,
    sf.uses_docstring,
    sf.caller_of_caller,
    sf.loop_over_list,
    sf.aug_assign_with_call,
    sf.ok_try_without_call,
]


@pytest.fixture(scope="module")
def unit():
    return Precompiler(FULL_UNIT, unit_name="tcorpus").compile()


class TestReachingSet:
    def test_reaching_functions_transformed(self, unit):
        assert "leaf" in unit.transformed_names
        assert "branches" in unit.transformed_names
        assert "caller_of_caller" in unit.transformed_names

    def test_pure_function_untouched(self, unit):
        assert "plain_math" not in unit.transformed_names
        assert unit.functions["plain_math"] is sf.plain_math


CASES = [
    ("straight_line", (), None),
    ("branches", (11,), None),
    ("nested_loops", (6,), None),
    ("break_continue", (20,), None),
    ("atomic_inner_loop", (5,), None),
    ("expression_calls", (6,), None),
    ("returns_call", (4,), None),
    ("recursive", (12,), None),
    ("while_with_call_test", (9,), None),
    ("uses_docstring", (), None),
    ("caller_of_caller", (9,), None),
    ("loop_over_list", ([5, 3, 8],), None),
    ("aug_assign_with_call", (4,), None),
    ("ok_try_without_call", (), None),
]


class TestSemanticEquivalence:
    @pytest.mark.parametrize("name,args,_", CASES)
    def test_plain_execution_matches_original(self, unit, name, args, _):
        original = getattr(sf, name)
        transformed = unit.entry(name)
        assert transformed(DummyCtx(), *args) == original(DummyCtx(), *args)

    def test_docstring_preserved(self, unit):
        assert "survive" in unit.entry("uses_docstring").__doc__


class TestRejections:
    @pytest.mark.parametrize(
        "fn,construct",
        [
            (sf.bad_try, "try"),
            (sf.bad_with, "with"),
            (sf.bad_nested_def, "nested"),
            (sf.bad_boolop, "short-circuit"),
            (sf.bad_comprehension, "scope"),
        ],
    )
    def test_unsupported_constructs_rejected(self, fn, construct):
        with pytest.raises(UnsupportedConstructError, match=construct):
            Precompiler([fn, sf.leaf]).compile()

    def test_generator_rejected(self):
        with pytest.raises(UnsupportedConstructError, match="generator"):
            Precompiler([sf.bad_generator, sf.leaf]).compile()

    def test_empty_unit_rejected(self):
        from repro.errors import PrecompilerError

        with pytest.raises(PrecompilerError):
            Precompiler([]).compile()

    def test_non_reaching_entry_rejected(self):
        from repro.errors import PrecompilerError
        from repro.precompiler import PrecompiledApp

        unit = Precompiler([sf.plain_math, sf.leaf]).compile()
        with pytest.raises(PrecompilerError):
            PrecompiledApp(unit, entry="plain_math")


class TestGeneratedSources:
    def test_dispatch_loop_present(self, unit):
        src = unit.sources["branches"]
        assert "_pc" in src and "while True" in src
        assert "_c3_enter" in src

    def test_for_desugared_to_restartable_iter(self, unit):
        assert "_c3_iter" in unit.sources["branches"]

    def test_atomic_inner_loop_not_exploded(self, unit):
        """The checkpoint-free inner loop survives as a native loop."""
        src = unit.sources["atomic_inner_loop"]
        assert "for j in range(10)" in src

    def test_expression_calls_lifted(self, unit):
        src = unit.sources["expression_calls"]
        assert "_c3tmp_" in src
