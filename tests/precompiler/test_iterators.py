"""Restartable iterators: semantics and mid-iteration pickling."""

import pickle

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.precompiler.iterators import c3_iter


def drain(it):
    out = []
    while it.has_next():
        out.append(it.next())
    return out


class TestRangeIterator:
    @pytest.mark.parametrize("r", [range(5), range(2, 20, 3), range(10, 0, -2), range(0)])
    def test_matches_builtin(self, r):
        assert drain(c3_iter(r)) == list(r)

    def test_next_past_end(self):
        it = c3_iter(range(1))
        it.next()
        with pytest.raises(StopIteration):
            it.next()

    def test_pickle_midway(self):
        it = c3_iter(range(10))
        for _ in range(4):
            it.next()
        restored = pickle.loads(pickle.dumps(it))
        assert drain(restored) == [4, 5, 6, 7, 8, 9]
        assert drain(it) == [4, 5, 6, 7, 8, 9]  # original unaffected


class TestSequenceIterator:
    def test_list(self):
        assert drain(c3_iter([3, 1, 4])) == [3, 1, 4]

    def test_string(self):
        assert drain(c3_iter("abc")) == ["a", "b", "c"]

    def test_ndarray_rows(self):
        arr = np.arange(6).reshape(3, 2)
        rows = drain(c3_iter(arr))
        assert [r.tolist() for r in rows] == [[0, 1], [2, 3], [4, 5]]

    def test_dict_iterates_keys(self):
        assert drain(c3_iter({"a": 1, "b": 2})) == ["a", "b"]

    def test_generator_materialised(self):
        gen = (i * i for i in range(4))
        assert drain(c3_iter(gen)) == [0, 1, 4, 9]

    def test_set_deterministic(self):
        a = drain(c3_iter({3, 1, 2}))
        b = drain(c3_iter({2, 3, 1}))
        assert a == b == [1, 2, 3]

    def test_pickle_midway_aliasing(self):
        """The pickled iterator carries its sequence; within one pickle the
        alias is preserved (one object, two references)."""
        seq = [1, 2, 3]
        it = c3_iter(seq)
        it.next()
        restored_it, restored_seq = pickle.loads(pickle.dumps((it, seq)))
        assert restored_it.seq is restored_seq
        assert drain(restored_it) == [2, 3]

    def test_idempotent_wrap(self):
        it = c3_iter([1])
        assert c3_iter(it) is it


@given(st.lists(st.integers(), max_size=30))
def test_sequence_matches_builtin_property(values):
    assert drain(c3_iter(values)) == values


@given(start=st.integers(-50, 50), stop=st.integers(-50, 50),
       step=st.integers(-5, 5).filter(lambda s: s != 0))
def test_range_matches_builtin_property(start, stop, step):
    r = range(start, stop, step)
    assert drain(c3_iter(r)) == list(r)
