"""Stack capture/restore mechanics and end-to-end precompiled recovery."""

import pickle

import pytest

from repro.errors import RecoveryError
from repro.precompiler import PrecompiledApp, Precompiler
from repro.precompiler.runtime import C3StackRuntime
from repro.runtime import RunConfig, run_with_recovery
from repro.simmpi import SUM, FailureSchedule

from tests.precompiler import support_functions as sf


class CapturingCtx:
    """Fake ctx whose potential_checkpoint captures the live stack.

    ``capture()`` returns live references, so — exactly like the protocol
    layer's checkpoint writer — the snapshot must be serialised at capture
    time, before the application mutates anything.
    """

    def __init__(self, rt):
        self.rt = rt
        self.captures = []

    def potential_checkpoint(self):
        self.captures.append(pickle.dumps(self.rt.capture()))


@pytest.fixture()
def unit():
    return Precompiler([sf.branches, sf.leaf], unit_name="cap").compile()


class TestCapture:
    def test_capture_sees_both_frames(self, unit):
        rt = C3StackRuntime(unit).activate()
        try:
            ctx = CapturingCtx(rt)
            unit.entry("branches")(ctx, 4)
        finally:
            rt.deactivate()
        assert ctx.captures
        first = pickle.loads(ctx.captures[0])
        assert [fid for fid, _ in first] == ["cap.branches", "cap.leaf"]
        for _fid, frame in first:
            assert "_pc" in frame

    def test_excluded_locals_not_captured(self, unit):
        rt = C3StackRuntime(unit).activate()
        try:
            ctx = CapturingCtx(rt)
            unit.entry("branches")(ctx, 4)
        finally:
            rt.deactivate()
        for _fid, frame in pickle.loads(ctx.captures[0]):
            assert "ctx" not in frame
            assert "_c3fr" not in frame

    def test_captured_frames_picklable(self, unit):
        rt = C3StackRuntime(unit).activate()
        try:
            ctx = CapturingCtx(rt)
            unit.entry("branches")(ctx, 6)
        finally:
            rt.deactivate()
        assert pickle.loads(ctx.captures[-1])[0][0] == "cap.branches"

    def test_restore_resumes_mid_loop(self, unit):
        """Capture at checkpoint k, then re-enter with those frames: the
        function must complete with the same answer as an uninterrupted
        run."""
        rt = C3StackRuntime(unit).activate()
        try:
            ctx = CapturingCtx(rt)
            expected = unit.entry("branches")(ctx, 9)
            # Pick a mid-run capture and replay from it.
            frames = pickle.loads(ctx.captures[1])
            rt.begin_restore(frames)
            resumed = unit.entry("branches")(CapturingCtx(rt), 9)
        finally:
            rt.deactivate()
        assert resumed == expected

    def test_restore_mismatch_detected(self, unit):
        rt = C3StackRuntime(unit).activate()
        try:
            rt.begin_restore([("cap.leaf", {"_pc": 0})])
            with pytest.raises(RecoveryError, match="mismatch"):
                unit.entry("branches")(CapturingCtx(rt), 3)
        finally:
            rt.deactivate()


def deep_worker(ctx, depth, base):
    if depth == 0:
        val = exchange(ctx, base)
        return val
    return deep_worker(ctx, depth - 1, base) + 1


def exchange(ctx, value):
    partner = (ctx.rank + 1) % ctx.size
    ctx.mpi.send(value + ctx.rank, partner, tag=4)
    got = ctx.mpi.recv(source=(ctx.rank - 1) % ctx.size, tag=4)
    total = ctx.mpi.allreduce(got, SUM)
    ctx.potential_checkpoint()
    return total


def deep_main(ctx):
    acc = 0
    for i in range(80):
        acc += deep_worker(ctx, 3, i)
    return acc


class TestEndToEndPrecompiled:
    def test_recovery_through_deep_recursion(self):
        """Checkpoints taken five frames deep must rebuild the whole stack."""
        unit = Precompiler([deep_main, deep_worker, exchange], unit_name="deep").compile()
        app = PrecompiledApp(unit, entry="deep_main")
        cfg = RunConfig(nprocs=3, seed=8, checkpoint_interval=0.002,
                        detector_timeout=0.04)
        gold = run_with_recovery(app, cfg)
        out = run_with_recovery(app, cfg, failures=FailureSchedule.single(0.006, 1))
        assert out.results == gold.results
        assert len(out.attempts) == 2
        assert out.attempts[1].started_from_epoch >= 1
