"""Property test: the precompiler preserves semantics on randomly generated
structured programs.

Hypothesis builds small programs from the supported subset (assignments,
arithmetic, ``for`` over ranges, ``while`` with counters, ``if``/``else``,
``break``/``continue``, calls to a checkpointable leaf), writes them to a
real file (``inspect.getsource`` needs one), compiles them, and checks the
transformed function computes exactly what the original does.
"""

import importlib.util
import itertools
import sys
import textwrap

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.precompiler import Precompiler

_counter = itertools.count()


def _load_module(tmp_dir, source: str):
    name = f"_c3_randprog_{next(_counter)}"
    path = tmp_dir / f"{name}.py"
    path.write_text(source)
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


# ------------------------------------------------------------------ #
# Program generator: a list of statements in a tiny language, rendered
# to Python source inside a fixed scaffold.
# ------------------------------------------------------------------ #

_expr = st.sampled_from([
    "acc + i", "acc - 2 * i", "acc + 1", "i * i - acc % 7", "acc ^ i",
])

_simple_stmt = st.sampled_from([
    "acc = {e}",
    "acc += i + 1",
    "acc -= 3",
    "acc = leaf(ctx, acc % 50)",
    "tmp = leaf(ctx, i) + leaf(ctx, acc % 11)",
    "acc += tmp if 'tmp' in dir() else 0" if False else "acc += 1",
    "ctx.potential_checkpoint()",
])


def _render_block(stmts, indent):
    pad = "    " * indent
    return "\n".join(pad + s for s in stmts) if stmts else "    " * indent + "pass"


_statement = st.recursive(
    st.builds(lambda template, e: template.format(e=e), _simple_stmt, _expr),
    lambda inner: st.one_of(
        # if / else
        st.builds(
            lambda cond, body, orelse: (
                f"if {cond}:\n"
                + textwrap.indent("\n".join(body) or "pass", "    ")
                + ("\nelse:\n" + textwrap.indent("\n".join(orelse) or "pass", "    ")
                   if orelse else "")
            ),
            st.sampled_from(["acc % 2 == 0", "i > 2", "acc > i"]),
            st.lists(inner, min_size=1, max_size=3),
            st.lists(inner, max_size=2),
        ),
        # for over a small range, possibly with break/continue
        st.builds(
            lambda n, body, tail: (
                f"for j in range({n}):\n"
                + textwrap.indent("\n".join(body + tail) or "pass", "    ")
            ),
            st.integers(1, 4),
            st.lists(inner, min_size=1, max_size=3),
            st.sampled_from([[], ["if j == 1:", "    continue"], ["if acc % 13 == 5:", "    break"]]),
        ),
    ),
    max_leaves=8,
)


@st.composite
def programs(draw):
    body_stmts = draw(st.lists(_statement, min_size=1, max_size=5))
    body = textwrap.indent("\n".join(body_stmts), "        ")
    return f"""\
def leaf(ctx, x):
    y = x % 23 + 1
    ctx.potential_checkpoint()
    return y


def prog(ctx, n):
    acc = 0
    tmp = 0
    for i in range(n):
{body}
    return acc
"""


class _Ctx:
    def potential_checkpoint(self):
        pass


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(source=programs(), n=st.integers(0, 6))
def test_transformed_equals_original(tmp_path_factory, source, n):
    tmp_dir = tmp_path_factory.mktemp("randprog")
    module = _load_module(tmp_dir, source)
    expected = module.prog(_Ctx(), n)
    unit = Precompiler([module.prog, module.leaf], unit_name="rand").compile()
    got = unit.entry("prog")(_Ctx(), n)
    assert got == expected, f"\n--- program ---\n{source}"


@pytest.fixture(scope="session")
def tmp_path_factory_fixture(tmp_path_factory):
    return tmp_path_factory
