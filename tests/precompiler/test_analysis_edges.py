"""Edge cases of the precompiler's static analysis layer.

Covers the comm-root anchoring of checkpoint sites (a user's
``lock.barrier()`` must not be one), the checkpoint-reaching fixpoint
under mutual recursion, rejection of checkpointable calls in
comprehension/short-circuit positions, violation spans, and the
all-violations reporting mode of ``Precompiler.compile``.
"""

import ast
import textwrap

import pytest

from repro.errors import UnsupportedConstructError
from repro.precompiler.analysis import (
    UnitAnalysis,
    comm_roots,
    is_checkpoint_site,
    validate_supported,
)
from repro.precompiler.api import Precompiler


def _trees(source: str) -> dict[str, ast.FunctionDef]:
    module = ast.parse(textwrap.dedent(source))
    return {
        n.name: n for n in module.body if isinstance(n, ast.FunctionDef)
    }


class TestCommRoots:
    def test_named_comm_params_win(self):
        (tree,) = _trees("def f(a, ctx, b): pass").values()
        assert comm_roots(tree) == frozenset({"ctx"})

    def test_multiple_named_params(self):
        (tree,) = _trees("def f(ctx, comm): pass").values()
        assert comm_roots(tree) == frozenset({"ctx", "comm"})

    def test_first_param_fallback(self):
        (tree,) = _trees("def f(c, x): pass").values()
        assert comm_roots(tree) == frozenset({"c"})

    def test_no_params_no_roots(self):
        (tree,) = _trees("def f(): pass").values()
        assert comm_roots(tree) == frozenset()


class TestBarrierOverMatchRegression:
    """Regression: any ``X.barrier()`` used to count as a checkpoint site,
    so a threading ``lock.barrier()`` made its function checkpoint-reaching
    and forced a (broken) transform of innocent code."""

    SOURCE = """
        def uses_lock(ctx, lock):
            lock.barrier()
            return 1

        def uses_ctx(ctx, lock):
            ctx.barrier()
            return 2
    """

    def test_foreign_barrier_is_not_a_site(self):
        analysis = UnitAnalysis(_trees(self.SOURCE))
        assert not analysis.infos["uses_lock"].has_checkpoint_site
        assert analysis.infos["uses_ctx"].has_checkpoint_site
        assert analysis.reaching == {"uses_ctx"}

    def test_legacy_permissive_mode_still_matches(self):
        # Callers with no per-function context keep the historical
        # behaviour by passing comm_names=None.
        call = ast.parse("lock.barrier()").body[0].value
        assert is_checkpoint_site(call)  # permissive
        assert not is_checkpoint_site(call, frozenset({"ctx"}))
        assert is_checkpoint_site(call, frozenset({"lock"}))

    def test_compile_leaves_foreign_barrier_function_untransformed(self):
        class FakeLock:
            def barrier(self):
                return None

        def uses_lock(ctx, lock):
            lock.barrier()
            return 1

        unit = Precompiler([uses_lock]).compile()
        assert unit.transformed_names == set()
        # The untransformed original is served back verbatim.
        assert unit.functions["uses_lock"](None, FakeLock()) == 1

    def test_barrier_only_site_makes_unit_reaching(self):
        # Paper Section 4.5: barriers are potential-checkpoint locations,
        # so a unit whose only site is a ctx barrier still transforms.
        def barrier_only(ctx):
            total = 0
            for i in range(3):
                ctx.barrier()
                total += i
            return total

        unit = Precompiler([barrier_only]).compile()
        assert unit.transformed_names == {"barrier_only"}


class TestReachingFixpoint:
    def test_mutual_recursion_converges(self):
        analysis = UnitAnalysis(_trees(
            """
            def even(ctx, n):
                if n == 0:
                    ctx.potential_checkpoint()
                    return True
                return odd(ctx, n - 1)

            def odd(ctx, n):
                if n == 0:
                    return False
                return even(ctx, n - 1)
            """
        ))
        assert analysis.reaching == {"even", "odd"}
        assert analysis.checkpointable_callees("odd") == {"even"}
        assert analysis.checkpointable_callees("even") == {"odd"}

    def test_cycle_with_no_site_never_reaches(self):
        analysis = UnitAnalysis(_trees(
            """
            def ping(ctx, n):
                return pong(ctx, n - 1)

            def pong(ctx, n):
                return ping(ctx, n - 1)
            """
        ))
        assert analysis.reaching == set()


class TestUnsupportedPositions:
    def _validate(self, source: str):
        trees = _trees(source)
        analysis = UnitAnalysis(trees)
        for name in analysis.reaching:
            validate_supported(
                trees[name],
                analysis.reaching,
                analysis.infos[name].comm_names,
            )

    def test_comprehension_rejected_with_span(self):
        with pytest.raises(UnsupportedConstructError, match="nested scope") as info:
            self._validate(
                """
                def main(ctx):
                    return [step(ctx, i) for i in range(3)]

                def step(ctx, i):
                    ctx.potential_checkpoint()
                    return i
                """
            )
        assert info.value.function == "main"
        assert info.value.lineno == 3
        assert info.value.col_offset is not None

    def test_boolean_short_circuit_rejected(self):
        with pytest.raises(UnsupportedConstructError, match="short-circuit"):
            self._validate(
                """
                def main(ctx, ok):
                    return ok and step(ctx)

                def step(ctx):
                    ctx.potential_checkpoint()
                    return True
                """
            )

    def test_collect_mode_gathers_every_violation(self):
        trees = _trees(
            """
            def main(ctx):
                try:
                    step(ctx)
                except ValueError:
                    pass
                with open("/tmp/f"):
                    step(ctx)
                vals = [step(ctx) for i in range(2)]
                return vals

            def step(ctx):
                ctx.potential_checkpoint()
                return 1
            """
        )
        violations = []
        analysis = UnitAnalysis(trees, collect=violations)
        validate_supported(
            trees["main"],
            analysis.reaching,
            analysis.infos["main"].comm_names,
            collect=violations,
        )
        constructs = sorted(v.construct.split()[0] for v in violations)
        assert constructs == ["nested", "try", "with"]
        assert all(v.function == "main" for v in violations)
        assert all(v.lineno is not None for v in violations)


class TestCompileReportsAllViolations:
    def test_aggregated_error_lists_every_construct(self):
        def main(ctx):
            try:
                step(ctx)
            except ValueError:
                pass
            with open("/tmp/f"):
                step(ctx)
            return 0

        def step(ctx):
            ctx.potential_checkpoint()
            return 1

        with pytest.raises(UnsupportedConstructError) as info:
            Precompiler([main, step]).compile()
        exc = info.value
        assert len(exc.violations) == 2
        message = str(exc)
        assert "2 unsupported constructs" in message
        assert "try" in message and "with" in message
        # Spans are absolute file coordinates of this test module.
        assert exc.lineno is not None
        assert exc.lineno > main.__code__.co_firstlineno
        assert exc.function == "main"

    def test_single_violation_keeps_flat_message(self):
        def main(ctx):
            try:
                step(ctx)
            except ValueError:
                pass
            return 0

        def step(ctx):
            ctx.potential_checkpoint()
            return 1

        with pytest.raises(UnsupportedConstructError) as info:
            Precompiler([main, step]).compile()
        exc = info.value
        assert len(exc.violations) == 1
        assert "unsupported construct" in str(exc)
        assert exc.col_offset is not None
