"""Shrinker: minimises failing schedules, bounded, never loses the failure."""

from dataclasses import dataclass

from repro.chaos.scenario import ChaosScenario, CrashSpec, KillSpec
from repro.chaos.shrink import shrink_scenario


@dataclass
class FakeVerdict:
    ok: bool


def scenario(**kw):
    base = dict(
        name="big", kind="multi_kill", app="laplace", variant="full",
        seed=1, nprocs=4,
        kills=(
            KillSpec(frac=0.2, rank=0),
            KillSpec(frac=0.4, rank=2, attempt=1),
            KillSpec(frac=0.6, rank=3, offset=0.01),
        ),
        crashes=(CrashSpec(rank=1, epoch=2, after_chunks=2),),
        overrides=(("detector_timeout", 0.02),),
    )
    base.update(kw)
    return ChaosScenario(**base)


class TestShrink:
    def test_minimises_to_essential_kill(self):
        """Failure depends only on the rank-2 kill: everything else drops."""

        def check(s):
            return FakeVerdict(ok=not any(k.rank == 2 for k in s.kills))

        small = shrink_scenario(scenario(), check)
        assert len(small.kills) == 1 and small.kills[0].rank == 2
        assert small.crashes == ()
        assert small.name == "big-shrunk"
        # Simplification passes also ran: the surviving kill is unpinned.
        assert small.kills[0].attempt is None

    def test_minimises_to_essential_crash(self):
        def check(s):
            return FakeVerdict(ok=not s.crashes)

        small = shrink_scenario(scenario(), check)
        assert small.kills == ()
        assert len(small.crashes) == 1
        assert small.crashes[0].after_chunks == 0  # simplified torn point

    def test_unshrinkable_failure_returned_unchanged(self):
        """Failure needs the schedule exactly as-is: the original comes
        back, name untouched."""
        big = scenario()

        def check(s):
            return FakeVerdict(ok=s != big)

        small = shrink_scenario(big, check)
        assert small == big
        assert small.name == "big"

    def test_check_budget_respected(self):
        calls = []

        def check(s):
            calls.append(s)
            return FakeVerdict(ok=False)  # everything "fails": shrink greedily

        shrink_scenario(scenario(), check, max_checks=5)
        assert len(calls) <= 5

    def test_overrides_never_touched(self):
        def check(s):
            return FakeVerdict(ok=False)

        small = shrink_scenario(scenario(), check)
        assert small.overrides == scenario().overrides
