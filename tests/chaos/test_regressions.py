"""Pinned regression schedules: the bugs the chaos campaigns surfaced.

Every scenario here failed an invariant on the code as it stood before
this harness existed (see ``repro.chaos.regressions`` for the bug
descriptions).  They must now pass all three invariants, forever.
"""

import pytest

from repro.chaos.campaign import check_scenario
from repro.chaos.regressions import REGRESSION_SCENARIOS, run_regressions


@pytest.mark.parametrize("name", sorted(REGRESSION_SCENARIOS))
def test_pinned_schedule_passes(name):
    verdict = check_scenario(REGRESSION_SCENARIOS[name])
    assert verdict.ok, (
        f"{name}: {REGRESSION_SCENARIOS[name].describe()}\n"
        + "\n".join(verdict.violations)
    )


def test_regression_runner_covers_all_pins():
    verdicts = run_regressions()
    assert len(verdicts) == len(REGRESSION_SCENARIOS)
    assert all(v.ok for v in verdicts)
    # Every pin injects at least one fault that actually fires.
    for verdict in verdicts:
        assert verdict.kills_fired + verdict.crashes_fired >= 1, (
            verdict.scenario.name
        )
