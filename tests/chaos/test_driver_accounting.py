"""Attempt-indexed failure accounting and multi-attempt recovery semantics."""

import pytest

from repro.runtime.config import RunConfig, Variant
from repro.runtime.driver import run_with_recovery
from repro.simmpi import SUM, FailureSchedule, KillEvent

CFG = dict(nprocs=3, seed=9, checkpoint_interval=0.002, detector_timeout=0.03)


def ring_app(ctx):
    state = ctx.checkpointable_state(lambda: {"i": 0, "acc": 0.0})
    while state["i"] < 60:
        right = (ctx.rank + 1) % ctx.size
        ctx.mpi.send(float(state["i"]), right, tag=1)
        incoming = ctx.mpi.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
        state["acc"] += ctx.mpi.allreduce(incoming, SUM)
        state["i"] += 1
        ctx.potential_checkpoint()
    return state["acc"]


@pytest.fixture(scope="module")
def gold():
    return run_with_recovery(ring_app, RunConfig(**CFG))


class TestAttemptAccounting:
    def test_kills_recorded_on_their_attempt(self, gold):
        out = run_with_recovery(
            ring_app, RunConfig(**CFG),
            failures=FailureSchedule.single(0.004, 1),
        )
        assert out.results == gold.results
        assert [len(a.kills) for a in out.attempts] == [1, 0]
        assert out.attempts[0].kills[0].rank == 1

    def test_crashes_recorded_on_their_attempt(self, gold):
        out = run_with_recovery(
            ring_app, RunConfig(ckpt_keep_last=2, **CFG),
            failures=FailureSchedule.during_checkpoint(rank=2, epoch=2),
        )
        assert out.results == gold.results
        assert [len(a.checkpoint_crashes) for a in out.attempts] == [1, 0]
        assert out.attempts[0].checkpoint_crashes[0].epoch == 2

    def test_attempt_pinned_kill_fires_during_recovery(self, gold):
        """A kill pinned to attempt 1 strikes while the first restart is
        replaying; the third attempt still produces the exact answer."""
        out = run_with_recovery(
            ring_app, RunConfig(**CFG),
            failures=FailureSchedule(
                [KillEvent(0.004, 1), KillEvent(0.001, 0, attempt=1)]
            ),
        )
        assert out.results == gold.results
        assert len(out.attempts) == 3
        assert [k.rank for a in out.attempts for k in a.kills] == [1, 0]
        assert out.attempts[1].kills[0].attempt == 1

    def test_attempt_pinned_kill_never_fires_after_its_attempt(self, gold):
        """A kill pinned to attempt 3 of a run that only needs one attempt
        is a no-op — and must not leak into any later accounting."""
        out = run_with_recovery(
            ring_app, RunConfig(**CFG),
            failures=FailureSchedule([KillEvent(0.001, 1, attempt=3)]),
        )
        assert out.results == gold.results
        assert len(out.attempts) == 1
        assert out.attempts[0].kills == ()


class TestNoAppStateRecovery:
    def test_v2_mid_run_kill_restarts_from_scratch(self, gold):
        """A no-app-state stack cannot resume from a checkpoint (the app's
        state is not in it); recovery is re-execution from scratch — and
        still bit-identical (found by chaos campaign seed 7)."""
        cfg = RunConfig(variant=Variant.NO_APP_STATE, **CFG)
        v2_gold = run_with_recovery(ring_app, cfg)
        out = run_with_recovery(
            ring_app, cfg, failures=FailureSchedule.single(0.006, 1)
        )
        assert out.results == v2_gold.results == gold.results
        assert len(out.attempts) == 2
        assert out.attempts[1].started_from_epoch is None

    def test_v3_still_restores_from_checkpoint(self, gold):
        out = run_with_recovery(
            ring_app, RunConfig(**CFG),
            failures=FailureSchedule.single(0.006, 1),
        )
        assert out.results == gold.results
        assert out.attempts[1].started_from_epoch is not None
