"""Scenario generation: determinism, coverage, serialisation."""

import pytest

from repro.chaos import generate_campaign
from repro.chaos.generator import KIND_WEIGHTS
from repro.chaos.scenario import ChaosScenario, CrashSpec, KillSpec
from repro.errors import ConfigError
from repro.runtime.config import RunConfig, Variant


class TestDeterminism:
    def test_same_seed_same_campaign(self):
        a = generate_campaign(11, 40)
        b = generate_campaign(11, 40)
        assert [s.to_dict() for s in a] == [s.to_dict() for s in b]

    def test_different_seed_differs(self):
        a = generate_campaign(11, 40)
        b = generate_campaign(12, 40)
        assert [s.to_dict() for s in a] != [s.to_dict() for s in b]


class TestCoverage:
    def test_all_kinds_appear(self):
        kinds = {s.kind for s in generate_campaign(3, 120)}
        assert kinds == {k for k, _ in KIND_WEIGHTS}

    def test_axes_respected(self):
        scenarios = generate_campaign(
            5, 60, apps=("laplace",), variants=("full",), nprocs_choices=(2,)
        )
        assert {s.app for s in scenarios} == {"laplace"}
        assert {s.variant for s in scenarios} == {"full"}
        assert {s.nprocs for s in scenarios} == {2}

    def test_kind_filter(self):
        scenarios = generate_campaign(5, 20, kinds=("multi_kill",))
        assert len(scenarios) == 20
        assert {s.kind for s in scenarios} == {"multi_kill"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown scenario kinds"):
            generate_campaign(5, 5, kinds=("nope",))

    def test_count_validated(self):
        with pytest.raises(ConfigError, match="count"):
            generate_campaign(5, 0)

    def test_every_kill_targets_a_live_rank(self):
        for s in generate_campaign(9, 150):
            for k in s.kills:
                assert 0 <= k.rank < s.nprocs
            for c in s.crashes:
                assert 0 <= c.rank < s.nprocs


class TestSerialisation:
    def test_round_trip(self):
        for s in generate_campaign(21, 50):
            assert ChaosScenario.from_dict(s.to_dict()) == s

    def test_round_trip_through_json(self):
        import json

        for s in generate_campaign(22, 20):
            blob = json.dumps(s.to_dict())
            assert ChaosScenario.from_dict(json.loads(blob)) == s

    def test_describe_mentions_events(self):
        s = ChaosScenario(
            name="x", kind="ckpt_crash", app="laplace", variant="full",
            seed=1, nprocs=3,
            kills=(KillSpec(frac=0.5, rank=1, attempt=1),),
            crashes=(CrashSpec(rank=2, epoch=3, corrupt_manifest=True),),
        )
        text = s.describe()
        assert "kill(r1" in text and "@a1" in text
        assert "ckpt-crash(r2 e3 corrupt)" in text


class TestScenarioConfig:
    def test_config_applies_axes_and_overrides(self):
        s = ChaosScenario(
            name="x", kind="multi_kill", app="laplace", variant="piggyback",
            seed=17, nprocs=3,
            overrides=(("detector_timeout", 0.05),),
        )
        cfg = s.config(RunConfig(nprocs=8, storage_path="/tmp/nope"))
        assert cfg.variant is Variant.PIGGYBACK
        assert cfg.seed == 17 and cfg.nprocs == 3
        assert cfg.detector_timeout == 0.05
        assert cfg.storage_path is None  # chaos cells never persist

    def test_schedule_resolves_fracs_and_offsets(self):
        s = ChaosScenario(
            name="x", kind="detector_edge", app="laplace", variant="full",
            seed=1, nprocs=4,
            kills=(
                KillSpec(frac=0.5, rank=1),
                KillSpec(frac=0.5, rank=2, offset=0.02, attempt=1),
            ),
        )
        sched = s.schedule(horizon=0.1)
        events = sched.remaining()
        assert events[0].time == pytest.approx(0.05)
        assert events[1].time == pytest.approx(0.07)
        assert events[1].attempt == 1
