"""Campaign runner: invariants hold, reports are deterministic and portable."""

import json

import pytest

from repro.chaos import CampaignConfig, run_campaign
from repro.chaos.campaign import DEFAULT_PARAMS, ScenarioVerdict
from repro.chaos.generator import KIND_WEIGHTS
from repro.chaos.scenario import ChaosScenario, KillSpec
from repro.chaos.shrink import shrink_scenario


@pytest.fixture(scope="module")
def small_report():
    return run_campaign(CampaignConfig(master_seed=13, count=20), parallel=False)


class TestSmallCampaign:
    def test_all_scenarios_pass(self, small_report):
        assert small_report.failures == [], small_report.summary()
        assert small_report.passed == 20

    def test_faults_actually_fired(self, small_report):
        """A campaign whose faults never land is testing nothing."""
        fired = sum(v.kills_fired + v.crashes_fired for v in small_report.verdicts)
        restarted = sum(v.restarts for v in small_report.verdicts)
        assert fired >= 15
        assert restarted >= 10

    def test_report_rerun_is_deterministic(self, small_report):
        again = run_campaign(CampaignConfig(master_seed=13, count=20), parallel=False)
        assert again.fingerprint() == small_report.fingerprint()

    def test_report_json_round_trips(self, small_report):
        data = json.loads(small_report.to_json())
        assert data["passed"] == 20
        assert len(data["verdicts"]) == 20
        rebuilt = ChaosScenario.from_dict(data["verdicts"][0]["scenario"])
        assert rebuilt == small_report.verdicts[0].scenario

    def test_summary_mentions_seed(self, small_report):
        assert "seed=13" in small_report.summary()


class TestFailureReporting:
    def test_impossible_baseline_yields_violation_and_shrunk_schedule(self):
        """Force a failure (wrong baseline) and check the report carries a
        violation plus a shrinker-minimised schedule."""
        import pickle

        from repro.chaos.campaign import BaselineProbe, check_scenario

        scenario = ChaosScenario(
            name="forced", kind="multi_kill", app="laplace", variant="full",
            seed=3, nprocs=2,
            kills=(KillSpec(frac=0.3, rank=0), KillSpec(frac=0.5, rank=1)),
            overrides=(("checkpoint_interval", 0.0015),),
        )
        honest = check_scenario(scenario)
        assert honest.ok, honest.violations
        lying_probe = BaselineProbe(
            results=pickle.dumps(["wrong"]), horizon=0.006,
            checkpoints_committed=0,
        )
        verdict = check_scenario(scenario, probe=lying_probe)
        assert not verdict.ok
        assert any("diverge" in v for v in verdict.violations)
        shrunk = shrink_scenario(
            verdict.scenario,
            lambda s: check_scenario(s, probe=lying_probe),
        )
        # Both kills are irrelevant to the forced divergence: all dropped.
        assert shrunk.kills == ()

    def test_verdict_dict_carries_shrunk(self):
        scenario = ChaosScenario(
            name="x", kind="multi_kill", app="laplace", variant="full",
            seed=1, nprocs=2,
        )
        verdict = ScenarioVerdict(
            scenario=scenario, ok=False, violations=("boom",), shrunk=scenario
        )
        data = verdict.to_dict()
        assert data["violations"] == ["boom"]
        assert data["shrunk"]["name"] == "x"


class TestAcceptanceCampaign:
    def test_200_scenarios_all_invariants_hold(self):
        """The PR's acceptance gate: a fixed-seed campaign of 200 generated
        scenarios across V1-V3 x {laplace, dense_cg} passes failure-free
        equivalence, storage consistency and rerun determinism in every
        cell."""
        report = run_campaign(CampaignConfig(master_seed=7, count=200))
        assert len(report.verdicts) == 200
        assert report.failures == [], report.summary()
        kinds = {v.scenario.kind for v in report.verdicts}
        assert kinds == {k for k, _ in KIND_WEIGHTS}
        apps = {v.scenario.app for v in report.verdicts}
        assert apps == set(DEFAULT_PARAMS)
        variants = {v.scenario.variant for v in report.verdicts}
        assert variants == {"piggyback", "no-app-state", "full"}


class TestCampaignCliThroughFarm:
    def test_farm_dir_flag_caches_the_campaign(self, tmp_path, capsys):
        from repro.chaos.cli import main as chaos_main

        argv = [
            "--seed", "13", "--count", "2", "--serial",
            "--farm-dir", str(tmp_path / "farm"),
        ]
        assert chaos_main(argv) == 0
        cold_out = capsys.readouterr().out
        assert "farm: 0 cache hits" in cold_out
        # Second invocation: every cell served from the cache.
        assert chaos_main(argv) == 0
        warm_out = capsys.readouterr().out
        assert "(100.0%), 0 executed" in warm_out
