"""The three invariant checkers must detect what they claim to detect."""

import dataclasses
import pickle

from repro.chaos.invariants import (
    RunFingerprint,
    determinism_violations,
    equivalence_violations,
    results_blob,
    storage_violations,
)
from repro.runtime.config import RunConfig
from repro.runtime.driver import run_with_recovery
from repro.simmpi import SUM
from repro.statesave.storage import Storage

CFG = dict(nprocs=3, seed=4, checkpoint_interval=0.002, detector_timeout=0.04)


def ring_app(ctx):
    state = ctx.checkpointable_state(lambda: {"i": 0, "acc": 0.0})
    while state["i"] < 30:
        right = (ctx.rank + 1) % ctx.size
        ctx.mpi.send(float(state["i"]), right, tag=1)
        incoming = ctx.mpi.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
        state["acc"] += ctx.mpi.allreduce(incoming, SUM)
        state["i"] += 1
        ctx.potential_checkpoint()
    return state["acc"]


def run_ring(storage=None):
    storage = storage if storage is not None else Storage(None)
    return run_with_recovery(ring_app, RunConfig(**CFG), storage=storage), storage


class TestEquivalence:
    def test_identical_results_pass(self):
        outcome, _ = run_ring()
        assert equivalence_violations(results_blob(outcome), outcome) == []

    def test_divergent_results_reported(self):
        outcome, _ = run_ring()
        baseline = pickle.dumps([x + 1 for x in outcome.results])
        violations = equivalence_violations(baseline, outcome)
        assert violations and "diverge" in violations[0]


class TestStorage:
    def test_clean_run_passes(self):
        outcome, storage = run_ring()
        assert outcome.checkpoints_committed >= 1
        assert storage_violations(storage, CFG["nprocs"]) == []

    def test_corrupt_committed_manifest_reported(self):
        _, storage = run_ring()
        epoch = storage.committed_epoch()
        storage.store.corrupt_manifest("rank0/state", epoch)
        violations = storage_violations(storage, CFG["nprocs"])
        assert any("no longer validates" in v for v in violations)

    def test_orphan_chunk_reported(self):
        _, storage = run_ring()
        storage.store.backend.put("objects/none/ab/abcd", b"stranded")
        violations = storage_violations(storage, CFG["nprocs"])
        assert any("orphan chunk" in v for v in violations)

    def test_missing_generation_reported(self):
        _, storage = run_ring()
        epoch = storage.committed_epoch()
        storage.store.delete_generation("rank1/state", epoch)
        violations = storage_violations(storage, CFG["nprocs"])
        assert violations  # either validation or readability must trip


class TestDeterminism:
    def test_identical_runs_fingerprint_equal(self):
        a, _ = run_ring()
        b, _ = run_ring()
        fa, fb = RunFingerprint.of(a), RunFingerprint.of(b)
        assert fa == fb
        assert determinism_violations(fa, fb) == []

    def test_perturbed_counter_named(self):
        outcome, _ = run_ring()
        fa = RunFingerprint.of(outcome)
        fb = dataclasses.replace(fa, network_messages=fa.network_messages + 1)
        violations = determinism_violations(fa, fb)
        assert violations == [
            f"rerun changed network_messages: {fa.network_messages!r} vs "
            f"{fa.network_messages + 1!r}"
        ]

    def test_fingerprint_carries_attempt_accounting(self):
        outcome, _ = run_ring()
        fp = RunFingerprint.of(outcome)
        assert len(fp.attempts) == len(outcome.attempts)
        # index, completed, failed, dead_ranks, epoch, vt, kills, crashes
        assert all(len(row) == 8 for row in fp.attempts)
