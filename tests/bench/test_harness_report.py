"""Benchmark harness and report rendering."""

import pytest

from repro.apps.laplace import LaplaceParams
from repro.apps import laplace
from repro.apps.workloads import (
    ALL_CHARTS,
    DENSE_CG_POINTS,
    LAPLACE_POINTS,
    NEUROSYS_POINTS,
    WorkloadPoint,
)
from repro.bench import (
    ChartResult,
    VariantMeasurement,
    measure_point,
    render_chart,
    render_overhead_table,
    verify_variants_agree,
)
from repro.bench.harness import PointResult
from repro.runtime import RunConfig, Variant


def _m(variant, wall, ckpts=0):
    return VariantMeasurement(
        variant=variant, wall_seconds=wall, virtual_time=0.0,
        network_messages=0, network_bytes=0, checkpoints_committed=ckpts,
        storage_bytes=1024 * ckpts, checksum=1.0,
    )


@pytest.fixture()
def synthetic_point():
    point = WorkloadPoint("laplace", "64x64", "138KB", LaplaceParams(n=16))
    result = PointResult(point=point)
    result.measurements[Variant.UNMODIFIED] = _m(Variant.UNMODIFIED, 1.0)
    result.measurements[Variant.PIGGYBACK] = _m(Variant.PIGGYBACK, 1.2)
    result.measurements[Variant.NO_APP_STATE] = _m(Variant.NO_APP_STATE, 1.3, 3)
    result.measurements[Variant.FULL] = _m(Variant.FULL, 1.5, 3)
    return result


class TestOverheadMath:
    def test_overhead_pct(self, synthetic_point):
        ov = synthetic_point.overheads()
        assert ov[Variant.PIGGYBACK] == pytest.approx(20.0)
        assert ov[Variant.FULL] == pytest.approx(50.0)

    def test_baseline_excluded(self, synthetic_point):
        assert Variant.UNMODIFIED not in synthetic_point.overheads()


class TestRendering:
    def test_render_chart(self, synthetic_point):
        chart = ChartResult(app="laplace", points=[synthetic_point])
        text = render_chart(chart)
        assert "Laplace Solver" in text
        assert "+20.0%" in text and "+50.0%" in text
        assert "ckpts=3" in text

    def test_render_overhead_table(self, synthetic_point):
        chart = ChartResult(app="laplace", points=[synthetic_point])
        table = render_overhead_table([chart])
        assert "laplace" in table and "64x64" in table
        assert "50.0" in table

    def test_bytes_formatting(self):
        from repro.bench.report import _fmt_bytes

        assert _fmt_bytes(10) == "10B"
        assert _fmt_bytes(4096) == "4.0KB"
        assert _fmt_bytes(3 << 20) == "3.0MB"


class TestWorkloadCatalogue:
    def test_charts_cover_paper_sizes(self):
        assert len(DENSE_CG_POINTS) == 3
        assert len(LAPLACE_POINTS) == 3
        assert len(NEUROSYS_POINTS) == 4
        assert set(ALL_CHARTS) == {"dense_cg", "laplace", "neurosys"}

    def test_labels_match_paper(self):
        assert [p.label for p in DENSE_CG_POINTS] == [
            "4096x4096", "8192x8192", "16384x16384"
        ]
        assert [p.paper_state for p in NEUROSYS_POINTS] == [
            "18KB", "75KB", "308KB", "1.24MB"
        ]


class TestMeasurePoint:
    def test_repeats_keep_minimum(self):
        cfg = RunConfig(nprocs=2, seed=3, checkpoint_interval=0.005,
                        detector_timeout=0.05)
        point = WorkloadPoint("laplace", "tiny", "-",
                              LaplaceParams(n=16, iterations=10))
        result = measure_point(
            laplace.build, point, cfg,
            variants=(Variant.UNMODIFIED, Variant.FULL), repeats=2,
        )
        assert verify_variants_agree(result)
        assert result.measurements[Variant.FULL].wall_seconds > 0
