"""The bench-trajectory CI gate: within-file and cross-file checks."""

import json

from repro.bench.trajectory import (
    check_warm_hit_rate,
    compare_trajectories,
    main,
    newest_by_label,
    record_hit_rate,
    record_wall_seconds,
)
from repro.trace.metrics import MetricsRegistry


def rec(label, wall, hit_rate=None, via_snapshot=False):
    """One bench record, metrics either flat (legacy) or snapshot-shaped."""
    if via_snapshot:
        reg = MetricsRegistry()
        reg.observe("farm.wall_seconds", wall)
        if hit_rate is not None:
            reg.gauge("farm.hit_rate", hit_rate)
        return {"label": label, "metrics": reg.snapshot()}
    out = {"label": label, "wall_seconds": wall}
    if hit_rate is not None:
        out["hit_rate"] = hit_rate
    return out


def write_traj(path, records):
    path.write_text(json.dumps({"records": records}))
    return str(path)


def test_record_readers_prefer_snapshot_over_flat():
    snap = rec("warm", 2.5, hit_rate=0.95, via_snapshot=True)
    snap["wall_seconds"] = 99.0  # stale flat key must lose to the snapshot
    assert record_wall_seconds(snap) == 2.5
    assert record_hit_rate(snap) == 0.95
    flat = rec("cold", 4.0, hit_rate=0.0)
    assert record_wall_seconds(flat) == 4.0


def test_newest_by_label_keeps_last():
    records = [rec("cold", 1.0), rec("warm", 2.0), rec("cold", 3.0)]
    newest = newest_by_label(records)
    assert record_wall_seconds(newest["cold"]) == 3.0


def test_warm_hit_rate_check():
    ok = [rec("warm", 1.0, hit_rate=1.0, via_snapshot=True)]
    assert check_warm_hit_rate(ok) == []
    bad = [rec("warm", 1.0, hit_rate=0.4)]
    assert any("regressed" in p for p in check_warm_hit_rate(bad))
    assert any("no record" in p for p in check_warm_hit_rate([rec("cold", 1.0)]))


def test_compare_trajectories_flags_only_real_regressions():
    baseline = [rec("cold", 10.0), rec("warm", 1.0), rec("retired", 5.0)]
    current = [rec("cold", 12.0), rec("warm", 3.5), rec("brand_new", 1.0)]
    problems = compare_trajectories(current, baseline, max_wall_regression=1.0)
    # warm grew 250% (> 100% allowed); cold grew 20% (fine); labels present
    # on only one side are ignored.
    assert len(problems) == 1 and "'warm'" in problems[0]


def test_main_pass_and_regression_exit_codes(tmp_path, capsys):
    baseline = write_traj(
        tmp_path / "base.json",
        [rec("cold", 10.0), rec("warm", 1.0, hit_rate=1.0)],
    )
    good = write_traj(
        tmp_path / "good.json",
        [rec("cold", 11.0), rec("warm", 1.1, hit_rate=1.0)],
    )
    assert main([good, "--against", baseline]) == 0
    bad = write_traj(
        tmp_path / "bad.json",
        [rec("cold", 11.0), rec("warm", 50.0, hit_rate=0.2)],
    )
    assert main([bad, "--against", baseline]) == 1
    err = capsys.readouterr().err
    assert "BENCH REGRESSION" in err


def test_main_missing_baseline(tmp_path, capsys):
    good = write_traj(
        tmp_path / "good.json", [rec("warm", 1.0, hit_rate=1.0)]
    )
    missing = str(tmp_path / "nope.json")
    assert main([good, "--against", missing]) == 2
    assert main([good, "--against", missing, "--allow-missing-baseline"]) == 0
    assert "skipping cross-file diff" in capsys.readouterr().out


def test_main_unusable_input(tmp_path, capsys):
    assert main([str(tmp_path / "absent.json")]) == 2
    empty = write_traj(tmp_path / "empty.json", [])
    assert main([empty]) == 2


def test_stage_seconds_reader_merges_snapshot_and_flat():
    from repro.bench.trajectory import record_stage_seconds

    reg = MetricsRegistry()
    reg.observe("proto.stage_seconds.checkpoint", 0.25)
    reg.observe("proto.stage_seconds.piggyback", 0.05)
    record = {
        "label": "smoke",
        "metrics": reg.snapshot(),
        "stage_seconds": {"replay": 0.125},
    }
    stages = record_stage_seconds(record)
    assert stages["checkpoint"] == 0.25
    assert stages["piggyback"] == 0.05
    assert stages["replay"] == 0.125
    assert record_stage_seconds(rec("warm", 1.0)) == {}


def test_stage_budget_check():
    from repro.bench.trajectory import check_stage_budgets

    records = [
        rec("warm", 1.0),  # no stage accounting: never a violation
        {"label": "smoke", "stage_seconds": {"checkpoint": 0.4, "replay": 0.01}},
    ]
    assert check_stage_budgets(records, {"checkpoint": 0.5}) == []
    problems = check_stage_budgets(records, {"checkpoint": 0.1, "replay": 1.0})
    assert len(problems) == 1
    assert "proto.stage_seconds.checkpoint" in problems[0]
    assert "'smoke'" in problems[0]


def test_main_stage_budget_flag(tmp_path, capsys):
    current = write_traj(
        tmp_path / "cur.json",
        [
            rec("warm", 1.0, hit_rate=1.0),
            {"label": "smoke", "stage_seconds": {"checkpoint": 2.0}},
        ],
    )
    assert main([current, "--stage-budget", "checkpoint=5.0"]) == 0
    capsys.readouterr()
    assert main([current, "--stage-budget", "checkpoint=1.0"]) == 1
    assert "stage budget exceeded" in capsys.readouterr().err
    assert main([current, "--stage-budget", "nonsense"]) == 2
