"""The ``--fix`` rewriter: proposals, golden before/after files,
idempotency, and the CLI write/dry-run flow."""

import shutil
from pathlib import Path

from repro.check import apply_fixes, check_source, propose_fixes
from repro.check.cli import main
from repro.check.fixes import render_diff

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN = FIXTURES / "fixed"


def fix_source(name: str) -> tuple[str, str]:
    source = (FIXTURES / name).read_text()
    fixes = propose_fixes(source, file=name)
    return source, apply_fixes(source, fixes)


GOLDEN_NAMES = ("fix_nondet.py", "fix_defaults.py", "fix_escape.py")


class TestGoldens:
    def test_nondet_fixture_matches_golden(self):
        _, fixed = fix_source("fix_nondet.py")
        assert fixed == (GOLDEN / "fix_nondet.py").read_text()

    def test_defaults_fixture_matches_golden(self):
        _, fixed = fix_source("fix_defaults.py")
        assert fixed == (GOLDEN / "fix_defaults.py").read_text()

    def test_escape_fixture_matches_golden(self):
        _, fixed = fix_source("fix_escape.py")
        assert fixed == (GOLDEN / "fix_escape.py").read_text()

    def test_goldens_verify_clean(self):
        for name in GOLDEN_NAMES:
            fixed = (GOLDEN / name).read_text()
            result = check_source(fixed, file=name)
            assert [d.code for d in result.diagnostics] == [], name

    def test_second_application_is_a_noop(self):
        for name in GOLDEN_NAMES:
            _, fixed = fix_source(name)
            again = propose_fixes(fixed, file=name)
            assert again == [], name
            assert apply_fixes(fixed, again) == fixed


class TestEscapeFixes:
    def test_each_global_registers_once(self):
        source = (FIXTURES / "fix_escape.py").read_text()
        fixes = propose_fixes(source, file="fix_escape.py")
        registrations = [
            f.replacement for f in fixes
            if "checkpointable_state(" in f.replacement
            and "import" not in f.replacement
        ]
        # CACHE + HISTORY + RESULTS, despite RESULTS being implicated by
        # both the RPR030 in record() and the RPR034 at its call site.
        assert sorted(registrations) == [
            'checkpointable_state("CACHE")\n',
            'checkpointable_state("HISTORY")\n',
            'checkpointable_state("RESULTS")\n',
        ]

    def test_import_is_inserted_once(self):
        source = (FIXTURES / "fix_escape.py").read_text()
        fixes = propose_fixes(source, file="fix_escape.py")
        imports = [f for f in fixes if "import" in f.replacement]
        assert len(imports) == 1
        assert imports[0].replacement == (
            "from repro.statesave import checkpointable_state\n"
        )

    def test_existing_import_is_not_duplicated(self):
        source = (
            "from repro.statesave import checkpointable_state\n"
            "\n"
            "CACHE = {}\n"
            "\n"
            "\n"
            "def main(ctx):\n"
            "    ctx.potential_checkpoint()\n"
            '    x = ctx.allreduce(1.0, op="sum")\n'
            '    CACHE["x"] = x\n'
            "    return x\n"
        )
        fixes = propose_fixes(source, file="<test>")
        assert all("import" not in f.replacement for f in fixes)
        fixed = apply_fixes(source, fixes)
        assert fixed.count("from repro.statesave import") == 1
        assert 'checkpointable_state("CACHE")' in fixed

    def test_globals_defined_elsewhere_are_left_alone(self):
        source = (
            "from somewhere import SHARED\n"
            "\n"
            "\n"
            "def main(ctx):\n"
            "    ctx.potential_checkpoint()\n"
            '    x = ctx.allreduce(1.0, op="sum")\n'
            '    SHARED["x"] = x\n'
            "    return x\n"
        )
        assert propose_fixes(source, file="<test>") == []


class TestProposals:
    def test_entropy_rewrites_target_the_call_only(self):
        source = (FIXTURES / "fix_nondet.py").read_text()
        fixes = propose_fixes(source, file="fix_nondet.py")
        by_code = {}
        for f in fixes:
            by_code.setdefault(f.code, []).append(f)
        assert len(by_code["RPR020"]) == 3
        assert len(by_code["RPR021"]) == 2
        replacements = {f.replacement for f in fixes}
        assert "ctx.rng" in replacements  # random.<m> → ctx.rng.<m>
        assert "ctx.now()" in replacements
        assert any("ctx.nondet(lambda:" in r for r in replacements)

    def test_suppressed_findings_are_not_fixed(self):
        source = (
            "import random\n"
            "\n"
            "def main(ctx):\n"
            "    ctx.potential_checkpoint()\n"
            "    x = random.random()  # repro: ignore[RPR020]\n"
            '    return ctx.allreduce(x, op="sum")\n'
        )
        assert propose_fixes(source, file="<test>") == []

    def test_proposal_to_dict_is_json_ready(self):
        source = (FIXTURES / "fix_nondet.py").read_text()
        fix = propose_fixes(source, file="fix_nondet.py")[0]
        record = fix.to_dict()
        assert record["code"].startswith("RPR")
        assert record["file"] == "fix_nondet.py"
        assert isinstance(record["line"], int)
        assert record["replacement"]

    def test_render_diff_is_unified(self):
        source, fixed = fix_source("fix_nondet.py")
        diff = render_diff(source, fixed, "fix_nondet.py")
        assert diff.startswith("--- fix_nondet.py")
        assert "+    a = ctx.rng.random()" in diff


class TestCLIFixFlow:
    def test_write_rewrites_the_file(self, tmp_path, capsys):
        target = tmp_path / "fix_nondet.py"
        shutil.copy(FIXTURES / "fix_nondet.py", target)
        main([str(target), "--fix", "--write"])
        capsys.readouterr()
        assert target.read_text() == (GOLDEN / "fix_nondet.py").read_text()
        # the rewritten file now verifies clean and proposes nothing.
        assert main([str(target), "--fix"]) == 0
        out = capsys.readouterr().out
        assert "0 fix(es) proposed" in out

    def test_dry_run_leaves_the_file_alone(self, tmp_path, capsys):
        target = tmp_path / "fix_nondet.py"
        shutil.copy(FIXTURES / "fix_nondet.py", target)
        before = target.read_text()
        main([str(target), "--fix", "--dry-run"])
        out = capsys.readouterr().out
        assert target.read_text() == before
        assert "5 fix(es) proposed" in out

    def test_fix_without_write_prints_diff_only(self, tmp_path, capsys):
        target = tmp_path / "fix_defaults.py"
        shutil.copy(FIXTURES / "fix_defaults.py", target)
        before = target.read_text()
        main([str(target), "--fix"])
        out = capsys.readouterr().out
        assert target.read_text() == before
        assert "history=None" in out  # the diff is shown
        assert "2 fix(es) proposed" in out

    def test_write_fixes_escape_fixture(self, tmp_path, capsys):
        target = tmp_path / "fix_escape.py"
        shutil.copy(FIXTURES / "fix_escape.py", target)
        main([str(target), "--fix", "--write"])
        capsys.readouterr()
        assert target.read_text() == (GOLDEN / "fix_escape.py").read_text()
        assert main([str(target)]) == 0


STALE_AFTER_FIX = (
    "import random\n"
    "\n"
    "\n"
    "def main(ctx):\n"
    "    ctx.potential_checkpoint()\n"
    "    x = random.random()\n"
    "    y = 1.0  # repro: ignore[RPR020]\n"
    '    return ctx.allreduce(x + y, op="sum")\n'
)


class TestStaleSuppressionPruning:
    def test_prune_removes_a_fully_stale_comment(self):
        from repro.check.fixes import prune_stale_suppressions

        fixed, pruned = prune_stale_suppressions(
            STALE_AFTER_FIX, file="<test>"
        )
        assert pruned == 1
        assert "repro: ignore" not in fixed
        assert "y = 1.0\n" in fixed

    def test_prune_keeps_live_codes_in_mixed_comments(self):
        from repro.check.fixes import prune_stale_suppressions

        source = (
            "import random\n"
            "\n"
            "\n"
            "def main(ctx):\n"
            "    ctx.potential_checkpoint()\n"
            "    x = random.random()  # repro: ignore[RPR020,RPR021]\n"
            '    return ctx.allreduce(x, op="sum")\n'
        )
        fixed, pruned = prune_stale_suppressions(source, file="<test>")
        assert pruned == 1
        assert "# repro: ignore[RPR020]" in fixed
        assert "RPR021" not in fixed

    def test_prune_is_a_noop_on_live_suppressions(self):
        from repro.check.fixes import prune_stale_suppressions

        source = (
            "import random\n"
            "\n"
            "\n"
            "def main(ctx):\n"
            "    ctx.potential_checkpoint()\n"
            "    x = random.random()  # repro: ignore[RPR020]\n"
            '    return ctx.allreduce(x, op="sum")\n'
        )
        fixed, pruned = prune_stale_suppressions(source, file="<test>")
        assert pruned == 0
        assert fixed == source

    def test_write_prunes_suppressions_the_fix_strands(
        self, tmp_path, capsys
    ):
        # The entropy fix rewrites random.random() -> ctx.rng.random(),
        # which leaves a same-line suppression silencing nothing; --fix
        # --write must drop it rather than strand it.
        target = tmp_path / "app.py"
        target.write_text(
            "import random\n"
            "\n"
            "\n"
            "def main(ctx):\n"
            "    ctx.potential_checkpoint()\n"
            "    x = random.random()\n"
            "    y = 1.0  # repro: ignore[RPR020]\n"
            '    return ctx.allreduce(x + y, op="sum")\n'
        )
        main([str(target), "--fix", "--write"])
        out = capsys.readouterr().out
        text = target.read_text()
        assert "ctx.rng.random()" in text
        assert "repro: ignore" not in text
        assert "1 stale suppression(s) pruned" in out
        assert main([str(target)]) == 0
