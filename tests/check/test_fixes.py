"""The ``--fix`` rewriter: proposals, golden before/after files,
idempotency, and the CLI write/dry-run flow."""

import shutil
from pathlib import Path

from repro.check import apply_fixes, check_source, propose_fixes
from repro.check.cli import main
from repro.check.fixes import render_diff

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN = FIXTURES / "fixed"


def fix_source(name: str) -> tuple[str, str]:
    source = (FIXTURES / name).read_text()
    fixes = propose_fixes(source, file=name)
    return source, apply_fixes(source, fixes)


class TestGoldens:
    def test_nondet_fixture_matches_golden(self):
        _, fixed = fix_source("fix_nondet.py")
        assert fixed == (GOLDEN / "fix_nondet.py").read_text()

    def test_defaults_fixture_matches_golden(self):
        _, fixed = fix_source("fix_defaults.py")
        assert fixed == (GOLDEN / "fix_defaults.py").read_text()

    def test_goldens_verify_clean(self):
        for name in ("fix_nondet.py", "fix_defaults.py"):
            fixed = (GOLDEN / name).read_text()
            result = check_source(fixed, file=name)
            assert [d.code for d in result.diagnostics] == [], name

    def test_second_application_is_a_noop(self):
        for name in ("fix_nondet.py", "fix_defaults.py"):
            _, fixed = fix_source(name)
            again = propose_fixes(fixed, file=name)
            assert again == [], name
            assert apply_fixes(fixed, again) == fixed


class TestProposals:
    def test_entropy_rewrites_target_the_call_only(self):
        source = (FIXTURES / "fix_nondet.py").read_text()
        fixes = propose_fixes(source, file="fix_nondet.py")
        by_code = {}
        for f in fixes:
            by_code.setdefault(f.code, []).append(f)
        assert len(by_code["RPR020"]) == 3
        assert len(by_code["RPR021"]) == 2
        replacements = {f.replacement for f in fixes}
        assert "ctx.rng" in replacements  # random.<m> → ctx.rng.<m>
        assert "ctx.now()" in replacements
        assert any("ctx.nondet(lambda:" in r for r in replacements)

    def test_suppressed_findings_are_not_fixed(self):
        source = (
            "import random\n"
            "\n"
            "def main(ctx):\n"
            "    ctx.potential_checkpoint()\n"
            "    x = random.random()  # repro: ignore[RPR020]\n"
            '    return ctx.allreduce(x, op="sum")\n'
        )
        assert propose_fixes(source, file="<test>") == []

    def test_proposal_to_dict_is_json_ready(self):
        source = (FIXTURES / "fix_nondet.py").read_text()
        fix = propose_fixes(source, file="fix_nondet.py")[0]
        record = fix.to_dict()
        assert record["code"].startswith("RPR")
        assert record["file"] == "fix_nondet.py"
        assert isinstance(record["line"], int)
        assert record["replacement"]

    def test_render_diff_is_unified(self):
        source, fixed = fix_source("fix_nondet.py")
        diff = render_diff(source, fixed, "fix_nondet.py")
        assert diff.startswith("--- fix_nondet.py")
        assert "+    a = ctx.rng.random()" in diff


class TestCLIFixFlow:
    def test_write_rewrites_the_file(self, tmp_path, capsys):
        target = tmp_path / "fix_nondet.py"
        shutil.copy(FIXTURES / "fix_nondet.py", target)
        main([str(target), "--fix", "--write"])
        capsys.readouterr()
        assert target.read_text() == (GOLDEN / "fix_nondet.py").read_text()
        # the rewritten file now verifies clean and proposes nothing.
        assert main([str(target), "--fix"]) == 0
        out = capsys.readouterr().out
        assert "0 fix(es) proposed" in out

    def test_dry_run_leaves_the_file_alone(self, tmp_path, capsys):
        target = tmp_path / "fix_nondet.py"
        shutil.copy(FIXTURES / "fix_nondet.py", target)
        before = target.read_text()
        main([str(target), "--fix", "--dry-run"])
        out = capsys.readouterr().out
        assert target.read_text() == before
        assert "5 fix(es) proposed" in out

    def test_fix_without_write_prints_diff_only(self, tmp_path, capsys):
        target = tmp_path / "fix_defaults.py"
        shutil.copy(FIXTURES / "fix_defaults.py", target)
        before = target.read_text()
        main([str(target), "--fix"])
        out = capsys.readouterr().out
        assert target.read_text() == before
        assert "history=None" in out  # the diff is shown
        assert "2 fix(es) proposed" in out
