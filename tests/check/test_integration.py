"""The checker wired into its consumers: strict compiles, the Session
``check=`` knob, and chaos-campaign preflight."""

import importlib
import sys

import pytest

import repro
from repro import RunConfig, Session
from repro.api.registry import _REGISTRY
from repro.chaos.campaign import CampaignConfig, run_campaign
from repro.check import check_functions
from repro.check.driver import preflight
from repro.errors import CheckError, ConfigError
from repro.precompiler.api import Precompiler


# --------------------------------------------------------------------- #
# Precompiler.compile(strict=...)
# --------------------------------------------------------------------- #

def _conditional_collective(ctx):
    x = 1.0
    ctx.potential_checkpoint()
    if ctx.rank == 0:
        x = ctx.allreduce(x, op="sum")
    return x


class TestStrictCompile:
    def test_strict_raises_check_error(self):
        with pytest.raises(CheckError) as info:
            Precompiler([_conditional_collective]).compile(strict=True)
        assert any(d.code == "RPR014" for d in info.value.diagnostics)

    def test_default_compile_attaches_diagnostics(self):
        unit = Precompiler([_conditional_collective]).compile()
        assert any(d.code == "RPR014" for d in unit.diagnostics)

    def test_strict_diagnostics_match_the_cli_checker(self):
        # The acceptance contract: strict compile fails with the same
        # diagnostics repro-check prints for the same functions.
        with pytest.raises(CheckError) as info:
            Precompiler([_conditional_collective]).compile(strict=True)
        standalone = check_functions([_conditional_collective])
        assert [
            (d.code, d.span.line, d.function) for d in info.value.diagnostics
        ] == [
            (d.code, d.span.line, d.function) for d in standalone.errors
        ]

    def test_clean_unit_compiles_strict_with_no_findings(self):
        def clean(ctx):
            total = 0.0
            for i in range(4):
                ctx.potential_checkpoint()
                total = ctx.allreduce(total + i, op="sum")
            return total

        unit = Precompiler([clean]).compile(strict=True)
        assert unit.diagnostics == ()


# --------------------------------------------------------------------- #
# Session.run / sweep check= knob
# --------------------------------------------------------------------- #

def _clean_session_app(ctx):
    from repro.simmpi.op import SUM

    total = 0.0
    for i in range(3):
        ctx.potential_checkpoint()
        total = ctx.mpi.allreduce(total + float(ctx.rank), SUM)
    return total


def _global_mutating_app(ctx):
    from repro.simmpi.op import SUM

    sys.modules["check_probe"] = None  # store through a non-local root
    ctx.potential_checkpoint()
    return ctx.mpi.allreduce(1.0, SUM)


class TestSessionCheckKnob:
    def test_config_rejects_bad_level(self):
        with pytest.raises(ConfigError, match="check must be"):
            RunConfig(nprocs=2, check="loud")

    def test_off_by_default(self):
        outcome = Session().run(_global_mutating_app, RunConfig(nprocs=2))
        assert outcome.results
        sys.modules.pop("check_probe", None)

    def test_error_level_refuses_broken_app(self):
        with pytest.raises(CheckError) as info:
            Session().run(
                _global_mutating_app, RunConfig(nprocs=2), check="error"
            )
        assert any(d.code == "RPR030" for d in info.value.diagnostics)

    def test_config_level_is_the_default_knob(self):
        with pytest.raises(CheckError):
            Session().run(
                _global_mutating_app, RunConfig(nprocs=2, check="error")
            )

    def test_warn_level_prints_and_runs(self, capsys):
        outcome = Session().run(
            _global_mutating_app, RunConfig(nprocs=2), check="warn"
        )
        assert outcome.results  # the run still happened
        assert "RPR030" in capsys.readouterr().err
        sys.modules.pop("check_probe", None)

    def test_clean_app_passes_error_level(self):
        outcome = Session().run(
            _clean_session_app, RunConfig(nprocs=2), check="error"
        )
        assert outcome.results

    def test_sweep_checks_once_up_front(self):
        with pytest.raises(CheckError):
            Session().sweep(
                _global_mutating_app,
                RunConfig(nprocs=2),
                variants=("full",),
                check="error",
            )

    def test_sourceless_function_is_skipped_not_crashed(self):
        # A REPL/exec-defined app has no retrievable source; the checker
        # skips it (per the _run_check contract) instead of erroring out.
        ns: dict = {}
        exec(
            "def sourceless(ctx):\n"
            "    from repro.simmpi.op import SUM\n"
            "    ctx.potential_checkpoint()\n"
            "    return ctx.mpi.allreduce(1.0, SUM)\n",
            ns,
        )
        outcome = Session().run(
            ns["sourceless"], RunConfig(nprocs=2), check="error"
        )
        assert outcome.results

    def test_registered_apps_pass_error_level(self):
        cfg = RunConfig(nprocs=2, checkpoint_interval=0.002)
        outcome = Session().run("dense_cg", cfg, check="error")
        assert outcome.results


# --------------------------------------------------------------------- #
# preflight / chaos campaigns
# --------------------------------------------------------------------- #

BROKEN_APP_SOURCE = '''\
"""A registered app the checker must reject (module-global mutation) —
but which still executes fine, so preflight=False can run it."""

import repro
from repro.simmpi.op import SUM

STATS = {}


@repro.app(name="broken_check_app")
def broken_check_app(ctx):
    total = 0.0
    for i in range(3):
        ctx.potential_checkpoint()
        total = ctx.mpi.allreduce(total + float(ctx.rank), SUM)
    STATS["total"] = total
    return total
'''


@pytest.fixture()
def broken_app(tmp_path, monkeypatch):
    mod = tmp_path / "broken_check_mod.py"
    mod.write_text(BROKEN_APP_SOURCE)
    monkeypatch.syspath_prepend(str(tmp_path))
    importlib.import_module("broken_check_mod")
    yield "broken_check_app"
    _REGISTRY.pop("broken_check_app", None)
    sys.modules.pop("broken_check_mod", None)


class TestPreflight:
    def test_clean_apps_return_results(self):
        results = preflight(["dense_cg", "laplace"], level="error")
        assert [r.target for r in results] == ["app:dense_cg", "app:laplace"]
        assert all(r.ok for r in results)

    def test_broken_app_raises_with_diagnostics(self, broken_app):
        with pytest.raises(CheckError) as info:
            preflight([broken_app], level="error")
        codes = {d.code for d in info.value.diagnostics}
        assert "RPR030" in codes

    def test_warn_level_never_raises(self, broken_app):
        results = preflight([broken_app], level="warn")
        assert len(results) == 1 and not results[0].ok

    def test_campaign_preflights_its_app_matrix(self, broken_app):
        config = CampaignConfig(count=1, apps=(broken_app,))
        with pytest.raises(CheckError):
            run_campaign(config, parallel=False)

    def test_campaign_preflight_can_be_disabled(self, broken_app):
        # Opting out skips the static gate; the campaign then proceeds to
        # generate and simulate scenarios against the (broken) app.
        config = CampaignConfig(
            count=1, apps=(broken_app,), shrink_failures=False
        )
        report = run_campaign(config, parallel=False, preflight=False)
        assert len(report.verdicts) == 1
        _ = repro  # silence unused-import linters; repro.app used in fixture
