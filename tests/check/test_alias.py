"""Alias-aware VDS-escape analysis: mutations through aliases of
non-local state (RPR033) and checkpointed locals smuggled into module
state through helper parameters (RPR034)."""

import textwrap

from repro.check import check_source


def check(source: str):
    return check_source(textwrap.dedent(source), file="<test>")


def codes(result) -> list[str]:
    return sorted(d.code for d in result.diagnostics)


class TestAliasMutation:
    def test_store_through_direct_alias(self):
        result = check(
            """
            STATE = {}

            def main(ctx):
                ctx.potential_checkpoint()
                view = STATE
                view["x"] = ctx.allreduce(1.0, op="sum")
                return 0
            """
        )
        assert "RPR033" in codes(result)

    def test_mutator_call_through_alias(self):
        result = check(
            """
            LOG = []

            def main(ctx):
                ctx.potential_checkpoint()
                sink = LOG
                sink.append(ctx.rank)
                return ctx.allreduce(1.0, op="sum")
            """
        )
        assert "RPR033" in codes(result)

    def test_alias_laundered_through_container(self):
        result = check(
            """
            LOG = []

            def main(ctx):
                ctx.potential_checkpoint()
                box = (LOG, 0)
                sink = box[0]
                sink.extend([ctx.rank])
                return ctx.allreduce(1.0, op="sum")
            """
        )
        assert "RPR033" in codes(result)

    def test_helper_returning_global_taints_caller(self):
        result = check(
            """
            SETTINGS = {"tol": 1e-6}

            def shared(ctx):
                return SETTINGS

            def main(ctx):
                ctx.potential_checkpoint()
                cfg = shared(ctx)
                cfg["tol"] = 0.1
                return ctx.allreduce(1.0, op="sum")
            """
        )
        assert "RPR033" in codes(result)

    def test_fresh_local_container_is_clean(self):
        result = check(
            """
            def main(ctx):
                ctx.potential_checkpoint()
                log = []
                log.append(ctx.rank)
                copy = log
                copy.extend([1, 2])
                return ctx.allreduce(float(len(log)), op="sum")
            """
        )
        assert codes(result) == []

    def test_copy_of_global_is_clean(self):
        # list(...) builds a fresh object; mutating the copy does not
        # touch the module state it was built from.
        result = check(
            """
            DEFAULTS = [1, 2, 3]

            def main(ctx):
                ctx.potential_checkpoint()
                work = list(DEFAULTS)
                work.append(ctx.rank)
                return ctx.allreduce(float(len(work)), op="sum")
            """
        )
        assert codes(result) == []


class TestEscapingArgs:
    def test_local_stored_into_global_by_callee(self):
        result = check(
            """
            CACHE = {}

            def remember(ctx, value):
                CACHE["last"] = value

            def main(ctx):
                ctx.potential_checkpoint()
                field = [float(ctx.rank)]
                remember(ctx, field)
                return ctx.allreduce(field[0], op="sum")
            """
        )
        assert "RPR034" in codes(result)

    def test_escape_is_transitive_through_helpers(self):
        result = check(
            """
            CACHE = {}

            def stash(ctx, value):
                CACHE["last"] = value

            def relay(ctx, value):
                stash(ctx, value)

            def main(ctx):
                ctx.potential_checkpoint()
                field = [float(ctx.rank)]
                relay(ctx, field)
                return ctx.allreduce(field[0], op="sum")
            """
        )
        assert "RPR034" in codes(result)

    def test_value_only_callee_is_clean(self):
        result = check(
            """
            def norm(ctx, values):
                return ctx.allreduce(sum(values), op="sum")

            def main(ctx):
                ctx.potential_checkpoint()
                field = [float(ctx.rank)]
                return norm(ctx, field)
            """
        )
        assert codes(result) == []
