"""Seeded violations: mutable default argument and closure capture."""


def helper(ctx, xs=[]):  # CHECK: RPR031
    ctx.potential_checkpoint()
    return xs


def main(ctx):
    total = 0.0
    ctx.potential_checkpoint()
    scale = lambda v: v * total  # CHECK: RPR032
    return scale(1.0), helper(ctx)
