"""Seeded violation: conditional early exit skipping later collectives.

The break guard reads a received value — a rank-uniform guard would not
fire (every rank exits together), so the fixture taints it."""


def main(ctx):
    total = 0.0
    for i in range(10):
        ctx.potential_checkpoint()
        stop = ctx.recv(src=0)
        if stop > 100:  # CHECK: RPR011
            break
        total = ctx.allreduce(total, op="sum")
    return total
