"""Seeded violation: conditional early exit skipping later collectives."""


def main(ctx):
    total = 0.0
    for i in range(10):
        ctx.potential_checkpoint()
        if total > 100:  # CHECK: RPR011
            break
        total = ctx.allreduce(total, op="sum")
    return total
