"""Two-module app: the imported sibling helper joins the checked unit.

No findings in this file itself — the seeded violation lives in the
sibling (see the ALSO-CHECKS directive), proving the slicer carries
sibling spans/sources through unchanged."""
# ALSO-CHECKS: cross_unit_halo.py

from cross_unit_halo import exchange


def main(ctx):
    field = [1.0, 2.0]
    for _ in range(4):
        ctx.potential_checkpoint()
        field[0] = exchange(ctx, field)
        field[0] = ctx.allreduce(field[0], op="sum")
    return field[0]
