"""Seeded violation: a stale suppression.  The line it guards produces
no RPR020, so the suppression itself is flagged."""


def main(ctx):
    ctx.potential_checkpoint()
    x = 1.0  # repro: ignore[RPR020]  # CHECK: RPR090
    return ctx.allreduce(x, op="sum")
