"""Clean by suppression (no findings expected): the entropy draw is a
deliberate waiver — the ``# repro: ignore`` comment moves it to the
result's ``suppressed`` record, and because it silences a real finding no
RPR090 appears either."""

import random


def main(ctx):
    ctx.potential_checkpoint()
    jitter = random.random()  # repro: ignore[RPR020]
    return ctx.allreduce(jitter, op="sum")
