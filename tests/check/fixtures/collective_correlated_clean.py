"""Regression (clean): repeated branches on the same uniform predicate
correlate.

``staged`` branches twice on ``use_fast``; under v2 its summary was
``(allreduce | eps) . (bcast | eps)`` and comparing it against ``fused``
(both collectives under one branch) fired RPR010 in ``main``.  v3 keys
both branches on the same uniform predicate and merges the summaries per
path — ``[use_fast ? allreduce.bcast : eps]`` on both sides — so the
program verifies clean."""


def staged(ctx, x, use_fast):
    if use_fast:
        x = ctx.allreduce(x, op="sum")
    x = x + 1
    if use_fast:
        x = ctx.bcast(x)
    return x


def fused(ctx, x, use_fast):
    if use_fast:
        x = ctx.allreduce(x, op="sum")
        x = ctx.bcast(x + 1)
    return x


def main(ctx):
    x = 1.0
    use_fast = True
    ctx.potential_checkpoint()
    flag = ctx.recv(src=0)
    if flag > 0:
        x = staged(ctx, x, use_fast)
    else:
        x = fused(ctx, x, use_fast)
    return x
