"""Seeded violations: a checkpointed local smuggled into module state by
a helper.  The store inside the helper is the classic RPR030; the call
site handing the local over is the new interprocedural RPR034."""

CACHE = {}


def remember(ctx, key, value):
    CACHE[key] = value  # CHECK: RPR030


def main(ctx):
    ctx.potential_checkpoint()
    field = [float(ctx.rank)] * 8
    remember(ctx, ctx.rank, field)  # CHECK: RPR034
    return ctx.allreduce(field[0], op="sum")
