"""Seeded violation the mechanical fixer rewrites: a mutable default
argument becomes ``None`` plus an in-body rebuild guard (golden output in
``fixtures/fixed/fix_defaults.py``)."""


def accumulate(ctx, value, history=[]):  # CHECK: RPR031
    """Collect values into a per-call history."""
    history.append(value)
    return ctx.allreduce(value, op="sum")


def main(ctx):
    ctx.potential_checkpoint()
    return accumulate(ctx, float(ctx.rank))
