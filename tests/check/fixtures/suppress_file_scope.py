"""File-scoped suppressions: the RPR021 entry silences both wall-clock
reads below; the RPR031 entry silences nothing and is flagged stale."""

import time

# repro: ignore-file[RPR021]
# repro: ignore-file[RPR031]  # CHECK: RPR090


def main(ctx):
    ctx.potential_checkpoint()
    t0 = time.time()
    t1 = time.perf_counter()
    return ctx.allreduce(t1 - t0, op="sum")
