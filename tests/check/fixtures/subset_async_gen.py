"""Seeded violations: async construct, generator, loop-else."""


def main(ctx):
    total = 0.0
    for i in range(3):  # CHECK: RPR008
        total += step(ctx, i)
    else:
        total = 0.0

    async def poll():  # CHECK: RPR005
        return 1

    return total


def gen(ctx):
    ctx.potential_checkpoint()
    yield 1  # CHECK: RPR006


def step(ctx, i):
    ctx.potential_checkpoint()
    return float(i)
