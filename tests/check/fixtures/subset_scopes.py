"""Seeded violations: nested scope, short-circuit, global binding."""

TOTAL = 0.0


def main(ctx):
    global TOTAL  # CHECK: RPR007
    ok = True
    vals = [step(ctx, i) for i in range(3)]  # CHECK: RPR003
    flag = ok and step(ctx, 1) > 0  # CHECK: RPR004
    return vals, flag


def step(ctx, i):
    ctx.potential_checkpoint()
    return float(i)
