"""Seeded violations the mechanical fixer rewrites: entropy draws and
wall-clock reads.  ``tests/check/test_fixes.py`` applies ``--fix`` to
this file and compares against ``fixtures/fixed/fix_nondet.py``."""

import os
import random
import time


def main(ctx):
    ctx.potential_checkpoint()
    a = random.random()  # CHECK: RPR020
    b = random.randint(0, 7)  # CHECK: RPR020
    c = os.urandom(4)  # CHECK: RPR020
    t = time.time()  # CHECK: RPR021
    d = time.perf_counter()  # CHECK: RPR021
    return ctx.allreduce(a + b + t + d, op="sum"), c
