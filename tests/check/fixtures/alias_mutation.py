"""Seeded violations: module state mutated through local aliases — a
direct alias, a container element, and a helper's return value.  The
name-rooted RPR030 analysis sees none of these."""

HISTORY = []
SETTINGS = {"tol": 0.5}


def shared_settings():
    return SETTINGS


def main(ctx):
    ctx.potential_checkpoint()
    log = HISTORY
    log.append(ctx.rank)  # CHECK: RPR033
    box = (HISTORY, 0)
    sink = box[0]
    sink.extend([1, 2])  # CHECK: RPR033
    cfg = shared_settings()
    cfg["tol"] = 0.1  # CHECK: RPR033
    return ctx.allreduce(1.0, op="sum")
