"""Clean under v2 (no findings expected): the branch arms call
*different* helpers that resolve to the *same* collective protocol, and
the rank-parity halo exchange balances its tags — both shapes the v1
syntactic matcher could not prove safe."""

TAG_NEXT = 7


def sum_all(ctx, x):
    return ctx.allreduce(x, op="sum")


def sum_positive(ctx, x):
    return ctx.allreduce(max(x, 0.0), op="sum")


def exchange(ctx, x):
    if ctx.rank % 2 == 0:
        ctx.send(x, dest=(ctx.rank + 1) % ctx.size, tag=TAG_NEXT)
        return ctx.recv(tag=TAG_NEXT)
    got = ctx.recv(tag=TAG_NEXT)
    ctx.send(x, dest=(ctx.rank - 1) % ctx.size, tag=TAG_NEXT)
    return got


def main(ctx):
    x = float(ctx.rank)
    ctx.potential_checkpoint()
    if ctx.rank % 2 == 0:
        total = sum_all(ctx, x)
    else:
        total = sum_positive(ctx, x)
    return exchange(ctx, total)
