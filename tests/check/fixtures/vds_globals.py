"""Seeded violations: module-global state mutated from a unit function."""

CACHE = {}
TRACE = []


def main(ctx):
    ctx.potential_checkpoint()
    x = ctx.allreduce(1.0, op="sum")
    CACHE["x"] = x  # CHECK: RPR030
    TRACE.append(x)  # CHECK: RPR030
    return x
