"""Seeded advice: communication loops that can never checkpoint."""


def exchange(ctx, x):
    ctx.send(x, dest=(ctx.rank + 1) % ctx.size)
    return ctx.recv()


def main(ctx):
    x = 1.0
    ctx.potential_checkpoint()
    for i in range(100):  # CHECK: RPR040
        x = exchange(ctx, x)
    err = ctx.allreduce(x, op="sum")
    while err < 10.0:  # CHECK: RPR040
        err = ctx.allreduce(err, op="sum")
    return err
