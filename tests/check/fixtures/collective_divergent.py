"""Seeded violations: provably rank-divergent control over collectives.

Both predicates read ``ctx.rank`` directly, so divergence is provable and
the findings upgrade from RPR010/RPR012 to ``RPR014``."""


def main(ctx):
    x = 1.0
    ctx.potential_checkpoint()
    if ctx.rank == 0:  # CHECK: RPR014
        x = ctx.allreduce(x, op="sum")
    for i in range(ctx.rank):  # CHECK: RPR014
        ctx.potential_checkpoint()
        x = ctx.bcast(x)
    return x
