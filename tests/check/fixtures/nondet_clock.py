"""Seeded violations: host wall-clock reads."""

import time


def main(ctx):
    ctx.potential_checkpoint()
    t0 = time.time()  # CHECK: RPR021
    t1 = time.perf_counter()  # CHECK: RPR021
    return t1 - t0
