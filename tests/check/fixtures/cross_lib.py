"""Sibling helper library for the cross-module fixtures (clean alone)."""

SCALE = 2.0


def scale(x):
    return SCALE * x
