"""Seeded violation: a star import hides which sibling helpers the unit
calls, so none of them can join the checked unit."""

from cross_lib import *  # CHECK: RPR051


def main(ctx):
    ctx.potential_checkpoint()
    x = ctx.allreduce(1.0, op="sum")
    return scale(x)
