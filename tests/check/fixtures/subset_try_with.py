"""Seeded violations: checkpointable calls inside try/with."""


def main(ctx):
    total = 0.0
    for i in range(3):
        try:  # CHECK: RPR001
            total += step(ctx, i)
        except ValueError:
            pass
    with open("/tmp/x") as fh:  # CHECK: RPR002
        ctx.potential_checkpoint()
    return total


def step(ctx, i):
    ctx.potential_checkpoint()
    return float(i)
