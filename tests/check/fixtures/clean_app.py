"""A well-formed checkpointable app: the checker must stay silent."""


def main(ctx):
    total = 0.0
    for i in range(8):
        ctx.potential_checkpoint()
        total = ctx.allreduce(total + i, op="sum")
    return total
