"""Seeded advice: a communicating unit with no checkpoint site anywhere."""


def ring_step(ctx, x):  # CHECK: RPR041
    ctx.send(x, dest=(ctx.rank + 1) % ctx.size)
    return ctx.recv()


def main(ctx):
    x = float(ctx.rank)
    x = ring_step(ctx, x)
    return x
