"""Seeded violations: one-sided point-to-point protocols (tag constants
resolve through the module namespace)."""

TAG_RESULT = 21
TAG_WORK = 22


def main(ctx):
    ctx.potential_checkpoint()
    if ctx.rank > 0:
        ctx.send(1.0, dest=0, tag=TAG_RESULT)  # CHECK: RPR013
    if ctx.rank == 0:
        return ctx.recv(tag=TAG_WORK)  # CHECK: RPR013
    return 0.0
