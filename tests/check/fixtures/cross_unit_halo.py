"""Sibling module the slicer joins into ``cross_unit_app``'s unit.

Checked standalone *and* as part of the two-module app; the seeded
entropy draw fires identically in both (same code, same line, same
file), which is exactly the "multi-file app verifies like its
single-file merge" contract."""

import random


def exchange(ctx, field):
    ctx.potential_checkpoint()
    ctx.send(field[0], dest=0, tag=7)
    left = ctx.recv(src=0, tag=7)
    jitter = random.random()  # CHECK: RPR020
    return field[0] + left + jitter
