"""Seeded violations: collective sequence differs between branch arms."""


def helper_bcast(ctx, x):
    return ctx.bcast(x)


def main(ctx):
    x = 1.0
    ctx.potential_checkpoint()
    if ctx.rank == 0:  # CHECK: RPR010
        x = ctx.allreduce(x, op="sum")
    for i in range(4):
        ctx.potential_checkpoint()
        if i % 2:  # CHECK: RPR010
            x = helper_bcast(ctx, x)
    return x
