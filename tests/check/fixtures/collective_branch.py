"""Seeded violations: collective sequence differs between branch arms.

Both guards read a received value: rank divergence is *possible* (the
predicate is tainted) but not provable, so the findings stay ``RPR010``
rather than upgrading to ``RPR014``."""


def helper_bcast(ctx, x):
    return ctx.bcast(x)


def main(ctx):
    x = 1.0
    flag = ctx.recv(src=0)
    ctx.potential_checkpoint()
    if flag > 0:  # CHECK: RPR010
        x = ctx.allreduce(x, op="sum")
    for i in range(4):
        ctx.potential_checkpoint()
        if flag > i:  # CHECK: RPR010
            x = helper_bcast(ctx, x)
    return x
