"""Seeded violations: unlogged entropy sources."""

import os
import random
import uuid


def main(ctx):
    ctx.potential_checkpoint()
    a = random.random()  # CHECK: RPR020
    b = os.urandom(8)  # CHECK: RPR020
    c = uuid.uuid4()  # CHECK: RPR020
    d = ctx.rng.random()  # fine: the rank's checkpointed RNG stream
    rng = ctx.rng
    e = rng.random()  # fine: rooted at a local
    return a, b, c, d, e
