"""Seeded violation: a rank-divergent convergence loop whose collective
lives in a callee — invisible to any unit-local, syntactic matcher."""


def local_error(ctx, x):
    lo = ctx.recv()
    return abs(x - lo)


def refine(ctx, err):
    scaled = ctx.allreduce(err, op="max")
    return scaled * 0.5


def main(ctx):
    ctx.send(float(ctx.rank), dest=(ctx.rank + 1) % ctx.size)
    err = local_error(ctx, 1.0)
    while err > 0.5:  # CHECK: RPR012
        ctx.potential_checkpoint()
        err = refine(ctx, err)
    return err
