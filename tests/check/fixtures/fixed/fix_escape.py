"""Seeded violations the mechanical fixer repairs with registrations:
module-state escapes (direct store, aliased mutation, escaping argument)
each resolve to a ``checkpointable_state("...")`` declaration next to the
global.  ``tests/check/test_fixes.py`` applies ``--fix`` and compares
against ``fixtures/fixed/fix_escape.py``."""
from repro.statesave import checkpointable_state

CACHE = {}
checkpointable_state("CACHE")
HISTORY = []
checkpointable_state("HISTORY")
RESULTS = {"last": None}
checkpointable_state("RESULTS")


def record(ctx, value):
    RESULTS["last"] = value  # CHECK: RPR030
    return value


def main(ctx):
    ctx.potential_checkpoint()
    x = ctx.allreduce(1.0, op="sum")
    CACHE["x"] = x  # CHECK: RPR030
    log = HISTORY
    log.append(x)  # CHECK: RPR033
    record(ctx, x)  # CHECK: RPR034
    return x
