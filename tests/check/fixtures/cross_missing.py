"""Seeded violations: sibling imports the slicer cannot resolve — a name
the sibling does not define, and a helper renamed on import (the alias
hides which sibling function the calls bind to)."""

from cross_lib import missing_helper, scale as rescale  # CHECK: RPR050 # CHECK: RPR050


def main(ctx):
    ctx.potential_checkpoint()
    x = ctx.allreduce(1.0, op="sum")
    x = missing_helper(x)
    return rescale(x)
