"""The v3 import-graph slicer: sibling helpers join the checked unit with
per-module constant/suppression scoping, a two-module app verifies
exactly like its single-file merge, and unresolvable references surface
as the RPR05x family instead of silently dropping out."""

import textwrap

import pytest

from repro.check import check_path, import_closure

HALO = '''
TAG = 7


def exchange(ctx, value):
    ctx.potential_checkpoint()
    ctx.send(value, dest=0, tag=TAG)
    left = ctx.recv(src=0, tag=TAG)
    import random
    jitter = random.random()
    return value + left + jitter
'''

APP = '''
from halo import exchange


def main(ctx):
    acc = 0.0
    for _ in range(4):
        ctx.potential_checkpoint()
        acc = exchange(ctx, acc)
        acc = ctx.allreduce(acc, op="sum")
    return acc
'''

MERGED = '''
TAG = 7


def exchange(ctx, value):
    ctx.potential_checkpoint()
    ctx.send(value, dest=0, tag=TAG)
    left = ctx.recv(src=0, tag=TAG)
    import random
    jitter = random.random()
    return value + left + jitter


def main(ctx):
    acc = 0.0
    for _ in range(4):
        ctx.potential_checkpoint()
        acc = exchange(ctx, acc)
        acc = ctx.allreduce(acc, op="sum")
    return acc
'''


def write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


def codes(result):
    return sorted(d.code for d in result.diagnostics)


class TestTwoModuleParity:
    def test_app_reports_same_codes_as_single_file_merge(self, tmp_path):
        write(tmp_path, "halo.py", HALO)
        app = write(tmp_path, "app.py", APP)
        merged = write(tmp_path, "merged.py", MERGED)
        assert codes(check_path(str(app))) == codes(check_path(str(merged)))
        # the seeded entropy draw is the only finding in both shapes
        assert codes(check_path(str(app))) == ["RPR020"]

    def test_sibling_findings_keep_sibling_spans(self, tmp_path):
        halo = write(tmp_path, "halo.py", HALO)
        app = write(tmp_path, "app.py", APP)
        result = check_path(str(app))
        diag = next(d for d in result.diagnostics if d.code == "RPR020")
        assert diag.span.file == str(halo)
        assert diag.function == "exchange"

    def test_functions_report_both_modules(self, tmp_path):
        write(tmp_path, "halo.py", HALO)
        app = write(tmp_path, "app.py", APP)
        result = check_path(str(app))
        assert set(result.functions) == {"main", "exchange"}


class TestModuleAliasCalls:
    def test_import_module_joins_attribute_call_sites(self, tmp_path):
        write(tmp_path, "halo.py", HALO)
        app = write(tmp_path, "app.py", '''
            import halo


            def main(ctx):
                acc = 0.0
                for _ in range(4):
                    ctx.potential_checkpoint()
                    acc = halo.exchange(ctx, acc)
                    acc = ctx.allreduce(acc, op="sum")
                return acc
        ''')
        result = check_path(str(app))
        assert set(result.functions) == {"main", "exchange"}
        assert codes(result) == ["RPR020"]

    def test_import_as_alias_joins_too(self, tmp_path):
        write(tmp_path, "halo.py", HALO)
        app = write(tmp_path, "app.py", '''
            import halo as h


            def main(ctx):
                ctx.potential_checkpoint()
                acc = h.exchange(ctx, 0.0)
                return ctx.allreduce(acc, op="sum")
        ''')
        result = check_path(str(app))
        assert "exchange" in result.functions
        assert codes(result) == ["RPR020"]

    def test_missing_attribute_on_module_alias_warns(self, tmp_path):
        write(tmp_path, "halo.py", HALO)
        app = write(tmp_path, "app.py", '''
            import halo


            def main(ctx):
                ctx.potential_checkpoint()
                acc = halo.no_such_helper(ctx, 0.0)
                return ctx.allreduce(acc, op="sum")
        ''')
        result = check_path(str(app))
        assert codes(result) == ["RPR050"]


class TestUnresolvable:
    def test_missing_name_fires_only_when_called(self, tmp_path):
        write(tmp_path, "halo.py", HALO)
        called = write(tmp_path, "a.py", '''
            from halo import ghost


            def main(ctx):
                ctx.potential_checkpoint()
                return ctx.allreduce(ghost(1.0), op="sum")
        ''')
        uncalled = write(tmp_path, "b.py", '''
            from halo import ghost


            def main(ctx):
                ctx.potential_checkpoint()
                return ctx.allreduce(1.0, op="sum")
        ''')
        assert codes(check_path(str(called))) == ["RPR050"]
        assert codes(check_path(str(uncalled))) == []

    def test_aliased_helper_import_warns(self, tmp_path):
        write(tmp_path, "halo.py", HALO)
        app = write(tmp_path, "app.py", '''
            from halo import exchange as xchg


            def main(ctx):
                ctx.potential_checkpoint()
                return ctx.allreduce(xchg(ctx, 1.0), op="sum")
        ''')
        assert codes(check_path(str(app))) == ["RPR050"]

    def test_star_import_warns(self, tmp_path):
        write(tmp_path, "halo.py", HALO)
        app = write(tmp_path, "app.py", '''
            from halo import *


            def main(ctx):
                ctx.potential_checkpoint()
                return ctx.allreduce(exchange(ctx, 1.0), op="sum")
        ''')
        assert codes(check_path(str(app))) == ["RPR051"]

    def test_local_collision_warns(self, tmp_path):
        write(tmp_path, "halo.py", HALO)
        app = write(tmp_path, "app.py", '''
            from halo import exchange


            def exchange(ctx, value):
                return value


            def main(ctx):
                ctx.potential_checkpoint()
                return ctx.allreduce(exchange(ctx, 1.0), op="sum")
        ''')
        assert "RPR050" in codes(check_path(str(app)))

    def test_broken_sibling_warns_once(self, tmp_path):
        write(tmp_path, "halo.py", "def exchange(ctx, v:\n    pass\n")
        app = write(tmp_path, "app.py", '''
            from halo import exchange


            def main(ctx):
                ctx.potential_checkpoint()
                return ctx.allreduce(exchange(ctx, 1.0), op="sum")
        ''')
        result = check_path(str(app))
        assert codes(result) == ["RPR050"]

    def test_non_function_imports_stay_silent(self, tmp_path):
        write(tmp_path, "halo.py", HALO)
        app = write(tmp_path, "app.py", '''
            from halo import TAG


            def main(ctx):
                ctx.potential_checkpoint()
                return ctx.allreduce(float(TAG), op="sum")
        ''')
        assert codes(check_path(str(app))) == []


class TestPerModuleScoping:
    def test_constants_resolve_in_their_own_module(self, tmp_path):
        # The sibling sends on *its* TAG (3); the app receives on *its*
        # TAG (9).  A flat constant table would collapse the two and see
        # matched traffic; per-module scoping keeps them distinct.
        write(tmp_path, "wire.py", '''
            TAG = 3


            def push(ctx, value):
                ctx.potential_checkpoint()
                ctx.send(value, dest=0, tag=TAG)
        ''')
        app = write(tmp_path, "app.py", '''
            from wire import push

            TAG = 9


            def main(ctx):
                ctx.potential_checkpoint()
                push(ctx, 1.0)
                got = ctx.recv(src=0, tag=TAG)
                return ctx.allreduce(got, op="sum")
        ''')
        result = check_path(str(app))
        assert codes(result) == ["RPR013", "RPR013"]

    def test_matching_cross_module_tags_verify_clean(self, tmp_path):
        write(tmp_path, "wire.py", '''
            TAG = 9


            def push(ctx, value):
                ctx.potential_checkpoint()
                ctx.send(value, dest=0, tag=TAG)
        ''')
        app = write(tmp_path, "app.py", '''
            from wire import push

            TAG = 9


            def main(ctx):
                ctx.potential_checkpoint()
                push(ctx, 1.0)
                got = ctx.recv(src=0, tag=TAG)
                return ctx.allreduce(got, op="sum")
        ''')
        assert codes(check_path(str(app))) == []

    def test_sibling_suppressions_apply_to_sibling_findings(self, tmp_path):
        write(tmp_path, "halo.py", HALO.replace(
            "jitter = random.random()",
            "jitter = random.random()  # repro: ignore[RPR020]",
        ))
        app = write(tmp_path, "app.py", APP)
        result = check_path(str(app))
        assert codes(result) == []
        assert [d.code for d in result.suppressed] == ["RPR020"]

    def test_imported_constants_enter_the_target_scope(self, tmp_path):
        write(tmp_path, "wire.py", '''
            TAG = 5


            def push(ctx, value):
                ctx.potential_checkpoint()
                ctx.send(value, dest=0, tag=TAG)
        ''')
        app = write(tmp_path, "app.py", '''
            from wire import TAG, push


            def main(ctx):
                ctx.potential_checkpoint()
                push(ctx, 1.0)
                got = ctx.recv(src=0, tag=TAG)
                return ctx.allreduce(got, op="sum")
        ''')
        assert codes(check_path(str(app))) == []


class TestImportClosure:
    def test_closure_lists_target_and_siblings(self, tmp_path):
        write(tmp_path, "halo.py", HALO)
        app = write(tmp_path, "app.py", APP)
        members = import_closure(str(app))
        assert members[0] == str(app)
        assert str(tmp_path / "halo.py") in members

    def test_non_sibling_imports_are_ignored(self, tmp_path):
        app = write(tmp_path, "app.py", '''
            import os
            import textwrap


            def main(ctx):
                ctx.potential_checkpoint()
                return ctx.allreduce(1.0, op="sum")
        ''')
        assert import_closure(str(app)) == [str(app)]
