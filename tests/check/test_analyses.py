"""Behavioural edge cases of the individual analyses, driven through
``check_source`` so unit selection and span handling are exercised too."""

import textwrap

from repro.check import check_source


def check(source: str):
    return check_source(textwrap.dedent(source), file="<test>")


def codes(result) -> list[str]:
    return sorted(d.code for d in result.diagnostics)


class TestUnitSelection:
    def test_non_ctx_helpers_stay_out(self):
        # build() mutates a global and draws entropy — but it is not part
        # of the checked unit (no comm parameter, not called from one).
        result = check(
            """
            import random
            REGISTRY = {}

            def build(params):
                REGISTRY["x"] = random.random()
                return REGISTRY

            def main(ctx):
                ctx.potential_checkpoint()
                return ctx.allreduce(1.0, op="sum")
            """
        )
        assert result.functions == ("main",)
        assert codes(result) == []

    def test_plain_name_callees_join_the_unit(self):
        result = check(
            """
            def helper(c, x):
                c.potential_checkpoint()
                return x

            def main(ctx):
                return helper(ctx, 1)
            """
        )
        assert result.functions == ("helper", "main")

    def test_first_param_fallback_is_the_comm_root(self):
        # A helper spelling its context 'c' joins the unit through the
        # call graph, and its first parameter anchors its method calls.
        result = check(
            """
            def helper(c, x):
                c.potential_checkpoint()
                if c.rank == 0:
                    return c.allreduce(x, op="sum")
                return x

            def main(ctx):
                return helper(ctx, 1.0)
            """
        )
        assert codes(result) == ["RPR014"]


class TestCollectiveMatching:
    def test_matching_arms_are_silent(self):
        result = check(
            """
            def main(ctx):
                ctx.potential_checkpoint()
                if ctx.rank == 0:
                    x = ctx.allreduce(1.0, op="sum")
                else:
                    x = ctx.allreduce(0.0, op="sum")
                return x
            """
        )
        assert codes(result) == []

    def test_p2p_in_one_arm_is_not_a_collective(self):
        # laplace's halo exchange: conditional send/recv never enters the
        # *collective* matcher.  The one-sided send is the census's
        # business now (RPR013), not a branch mismatch.
        result = check(
            """
            def main(ctx):
                ctx.potential_checkpoint()
                if ctx.rank > 0:
                    ctx.send(1, dest=ctx.rank - 1)
                return 0
            """
        )
        assert codes(result) == ["RPR013"]

    def test_matched_p2p_pair_is_silent(self):
        # The full rank-parity protocol — a send and its matching recv
        # (same default tag) — verifies clean without any carve-out.
        result = check(
            """
            def main(ctx):
                ctx.potential_checkpoint()
                if ctx.rank > 0:
                    ctx.send(1, dest=ctx.rank - 1)
                if ctx.rank < ctx.size - 1:
                    x = ctx.recv()
                return 0
            """
        )
        assert codes(result) == []

    def test_collective_via_unit_call_counts(self):
        result = check(
            """
            def reduce_all(ctx, x):
                return ctx.allreduce(x, op="sum")

            def main(ctx):
                ctx.potential_checkpoint()
                if ctx.rank == 0:
                    return reduce_all(ctx, 1.0)
                return 0.0
            """
        )
        assert "RPR014" in codes(result)

    def test_unconditional_return_before_collective_is_silent(self):
        # An unconditional return is not an *early* exit — every rank
        # takes it.
        result = check(
            """
            def main(ctx):
                ctx.potential_checkpoint()
                x = ctx.allreduce(1.0, op="sum")
                return x
            """
        )
        assert codes(result) == []


class TestNondeterminism:
    def test_local_shadowing_suppresses(self):
        result = check(
            """
            def main(ctx):
                ctx.potential_checkpoint()
                random = ctx.rng
                return random.random()
            """
        )
        assert codes(result) == []

    def test_ctx_nondet_wrapper_is_clean(self):
        result = check(
            """
            def main(ctx):
                ctx.potential_checkpoint()
                return ctx.nondet(lambda: 42)
            """
        )
        assert codes(result) == []

    def test_numpy_random_flagged(self):
        result = check(
            """
            import numpy as np

            def main(ctx):
                ctx.potential_checkpoint()
                return np.random.normal()
            """
        )
        assert codes(result) == ["RPR020"]


class TestVdsEscape:
    def test_local_mutation_is_fine(self):
        result = check(
            """
            def main(ctx):
                ctx.potential_checkpoint()
                acc = []
                acc.append(1)
                table = {}
                table["k"] = 2
                return acc, table
            """
        )
        assert codes(result) == []

    def test_augassign_to_global_flagged(self):
        result = check(
            """
            STATS = {"calls": 0}

            def main(ctx):
                ctx.potential_checkpoint()
                STATS["calls"] += 1
                return 0
            """
        )
        assert codes(result) == ["RPR030"]

    def test_default_none_is_fine(self):
        result = check(
            """
            def main(ctx, xs=None):
                ctx.potential_checkpoint()
                return xs or []
            """
        )
        assert codes(result) == []

    def test_lambda_with_default_binding_is_clean(self):
        result = check(
            """
            def main(ctx):
                ctx.potential_checkpoint()
                total = 2.0
                scale = lambda v, t=total: v * t
                return scale(1.0)
            """
        )
        assert codes(result) == []


class TestCheckpointPlacement:
    def test_outermost_loop_reported_once(self):
        result = check(
            """
            def main(ctx):
                ctx.potential_checkpoint()
                for i in range(4):
                    for j in range(4):
                        ctx.send(j, dest=0)
                return 0
            """
        )
        # One RPR040 for the outermost loop; the receive-less send is the
        # census's one RPR013 (reported once per tag, not per loop level).
        assert codes(result) == ["RPR013", "RPR040"]

    def test_checkpoint_via_unit_call_satisfies_loop(self):
        result = check(
            """
            def step(ctx, i):
                ctx.potential_checkpoint()
                return ctx.allreduce(i, op="sum")

            def main(ctx):
                total = 0
                for i in range(4):
                    total = step(ctx, i)
                return total
            """
        )
        assert codes(result) == []

    def test_barrier_counts_as_checkpoint_site(self):
        # Paper Section 4.5: a barrier is a potential-checkpoint location,
        # so no RPR040 here; the unanswered send still earns its RPR013.
        result = check(
            """
            def main(ctx):
                for i in range(4):
                    ctx.send(i, dest=0)
                    ctx.barrier()
                return 0
            """
        )
        assert codes(result) == ["RPR013"]
