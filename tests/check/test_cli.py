"""The ``repro-check`` command line: target resolution, formats, exit codes."""

import json
from pathlib import Path

from repro.check.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
CLEAN = str(FIXTURES / "clean_app.py")
BROKEN = str(FIXTURES / "vds_globals.py")
ADVICE_ONLY = str(FIXTURES / "placement_loops.py")


class TestExitCodes:
    def test_clean_file_exits_zero(self, capsys):
        assert main([CLEAN]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "0 error(s)" in out

    def test_errors_exit_one(self, capsys):
        assert main([BROKEN]) == 1
        out = capsys.readouterr().out
        assert "RPR030" in out

    def test_advice_does_not_fail(self, capsys):
        assert main([ADVICE_ONLY]) == 0
        assert "RPR040" in capsys.readouterr().out

    def test_fail_on_never(self, capsys):
        assert main([BROKEN, "--fail-on", "never"]) == 0
        capsys.readouterr()

    def test_fail_on_warning(self, capsys):
        warn_file = str(FIXTURES / "nondet_clock.py")
        assert main([warn_file]) == 0  # warnings pass by default
        assert main([warn_file, "--fail-on", "warning"]) == 1
        capsys.readouterr()

    def test_unresolvable_target_exits_two(self, capsys):
        assert main(["no/such/file_or_module.py"]) == 2
        assert "failed to run" in capsys.readouterr().out


class TestTargets:
    def test_registered_app_by_name(self, capsys):
        assert main(["dense_cg"]) == 0
        assert "app:dense_cg: ok" in capsys.readouterr().out

    def test_module_by_dotted_name(self, capsys):
        assert main(["repro.apps.laplace"]) == 0
        assert "repro.apps.laplace: ok" in capsys.readouterr().out

    def test_apps_flag_checks_whole_catalogue(self, capsys):
        assert main(["--apps"]) == 0
        out = capsys.readouterr().out
        for app in ("dense_cg", "laplace", "neurosys"):
            assert f"app:{app}: ok" in out


class TestFormats:
    def test_json_payload(self, capsys):
        assert main([BROKEN, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        result = payload["results"][0]
        assert result["ok"] is False
        codes = [d["code"] for d in result["diagnostics"]]
        assert codes == ["RPR030", "RPR030"]
        assert all(d["span"]["file"] == BROKEN for d in result["diagnostics"])

    def test_list_codes(self, capsys):
        assert main(["--list-codes"]) == 0
        out = capsys.readouterr().out
        assert "RPR001" in out and "RPR041" in out
        assert "supported-subset" in out and "checkpoint-placement" in out
