"""SARIF 2.1.0 output: rule registry, result mapping, 1-based region
coordinates, and the CLI ``--format sarif`` flow."""

import json
from pathlib import Path

from repro.check import CODES, check_path, sarif_payload
from repro.check.cli import main
from repro.check.sarif import SARIF_VERSION

FIXTURES = Path(__file__).parent / "fixtures"


def payload_for(*names):
    results = [check_path(str(FIXTURES / name)) for name in names]
    return sarif_payload(results)


class TestPayloadShape:
    def test_version_and_single_run(self):
        payload = payload_for("vds_globals.py")
        assert payload["version"] == SARIF_VERSION
        assert len(payload["runs"]) == 1
        assert payload["runs"][0]["tool"]["driver"]["name"] == "repro-check"

    def test_every_code_is_a_rule(self):
        payload = payload_for("clean_app.py")
        rules = payload["runs"][0]["tool"]["driver"]["rules"]
        assert {r["id"] for r in rules} == set(CODES)

    def test_results_reference_registered_rules(self):
        payload = payload_for("vds_globals.py", "collective_branch.py")
        results = payload["runs"][0]["results"]
        assert results
        for r in results:
            assert r["ruleId"] in CODES
            assert r["level"] in {"error", "warning", "note"}

    def test_regions_are_one_based(self):
        path = FIXTURES / "vds_globals.py"
        payload = payload_for("vds_globals.py")
        for r in payload["runs"][0]["results"]:
            region = r["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1
            uri = r["locations"][0]["physicalLocation"]["artifactLocation"]
            assert uri["uri"] == str(path)

    def test_message_carries_the_hint(self):
        payload = payload_for("vds_globals.py")
        texts = [
            r["message"]["text"]
            for r in payload["runs"][0]["results"]
        ]
        assert any("hint:" in t for t in texts)

    def test_clean_result_has_no_results(self):
        payload = payload_for("clean_app.py")
        assert payload["runs"][0]["results"] == []


class TestCLISarif:
    def test_format_sarif_prints_parseable_sarif(self, capsys):
        status = main([
            str(FIXTURES / "vds_globals.py"), "--format", "sarif",
            "--fail-on", "never",
        ])
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert status == 0
        assert payload["version"] == SARIF_VERSION
        assert payload["runs"][0]["results"]

    def test_exit_status_still_reflects_findings(self, capsys):
        status = main([
            str(FIXTURES / "vds_globals.py"), "--format", "sarif",
        ])
        capsys.readouterr()
        assert status == 1
