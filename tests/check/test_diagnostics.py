"""The diagnostic model: code registry, spans, ordering, renderers."""

import json

import pytest

from repro.check import (
    CODES,
    CheckResult,
    Diagnostic,
    Severity,
    Span,
    render_json,
    render_text,
)


class TestRegistry:
    def test_codes_are_stable_shapes(self):
        for code, info in CODES.items():
            assert code.startswith("RPR") and len(code) == 6
            assert info.code == code
            assert info.analysis
            assert info.title

    def test_families_group_by_decade(self):
        assert all(
            CODES[c].analysis == "supported-subset"
            for c in CODES if c < "RPR010"
        )
        assert CODES["RPR010"].analysis == "collective-matching"
        assert CODES["RPR020"].analysis == "unlogged-nondeterminism"
        assert CODES["RPR030"].analysis == "vds-escape"
        assert CODES["RPR040"].analysis == "checkpoint-placement"

    def test_severity_ranks_order(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.ADVICE.rank

    def test_unregistered_code_rejected(self):
        with pytest.raises(ValueError, match="unregistered"):
            Diagnostic(code="RPR999", message="nope")


class TestDiagnostic:
    def test_severity_and_analysis_come_from_registry(self):
        d = Diagnostic(code="RPR020", message="m")
        assert d.severity is Severity.ERROR
        assert d.analysis == "unlogged-nondeterminism"

    def test_render_is_file_line_col_and_hint(self):
        d = Diagnostic(
            code="RPR030",
            message="mutates global",
            span=Span(file="app.py", line=12, col=4),
            function="main",
            hint="pass it in",
        )
        text = d.render()
        assert text.splitlines()[0] == (
            "app.py:12:5: error[RPR030] [main]: mutates global"
        )
        assert "hint: pass it in" in text

    def test_sorting_is_by_location_then_severity(self):
        late = Diagnostic(code="RPR001", message="a", span=Span("f", 9, 0))
        early_advice = Diagnostic(code="RPR040", message="b", span=Span("f", 2, 0))
        early_error = Diagnostic(code="RPR010", message="c", span=Span("f", 2, 0))
        ordered = sorted(
            [late, early_advice, early_error], key=Diagnostic.sort_key
        )
        assert ordered == [early_error, early_advice, late]

    def test_to_dict_roundtrips_through_json(self):
        d = Diagnostic(code="RPR011", message="m", span=Span("f", 1, 0))
        payload = json.loads(render_json([d]))
        assert payload[0]["code"] == "RPR011"
        assert payload[0]["severity"] == "warning"
        assert payload[0]["span"]["line"] == 1


class TestCheckResult:
    def _mk(self, *codes):
        return CheckResult(
            target="t",
            diagnostics=tuple(
                Diagnostic(code=c, message="m", span=Span("f", i + 1, 0))
                for i, c in enumerate(codes)
            ),
            functions=("main",),
        )

    def test_ok_means_no_errors(self):
        assert self._mk().ok
        assert self._mk("RPR040").ok
        assert self._mk("RPR011").ok
        assert not self._mk("RPR020").ok

    def test_buckets_by_severity(self):
        r = self._mk("RPR020", "RPR011", "RPR040", "RPR001")
        assert {d.code for d in r.errors} == {"RPR020", "RPR001"}
        assert {d.code for d in r.warnings} == {"RPR011"}
        assert {d.code for d in r.advice} == {"RPR040"}

    def test_render_counts(self):
        text = self._mk("RPR020", "RPR011").render()
        assert "1 error(s), 1 warning(s), 0 advice" in text
        assert render_text(self._mk("RPR020").diagnostics) in text

    def test_clean_render_mentions_functions_checked(self):
        assert "ok (1 function(s) checked)" in self._mk().render()
