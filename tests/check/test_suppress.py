"""Suppression comments: parsing, line/file scoping, the RPR090
unused-suppression lint, and the suppressed record on results."""

import textwrap

from repro.check import check_source, find_suppressions


def check(source: str):
    return check_source(textwrap.dedent(source), file="<test>")


def codes(result) -> list[str]:
    return sorted(d.code for d in result.diagnostics)


class TestParsing:
    def test_line_scope(self):
        sups = find_suppressions(
            "x = 1  # repro: ignore[RPR020]\n", "<test>"
        )
        assert len(sups) == 1
        assert sups[0].codes == ("RPR020",)
        assert sups[0].line == 1
        assert not sups[0].file_scope

    def test_multiple_codes(self):
        sups = find_suppressions(
            "y = 2  # repro: ignore[RPR020, RPR021]\n", "<test>"
        )
        assert sups[0].codes == ("RPR020", "RPR021")

    def test_file_scope(self):
        sups = find_suppressions(
            "# repro: ignore-file[RPR031]\n", "<test>"
        )
        assert sups[0].file_scope

    def test_describe_round_trips(self):
        sups = find_suppressions(
            "z = 3  # repro: ignore[RPR021,RPR020]\n", "<test>"
        )
        assert sups[0].describe() == "# repro: ignore[RPR021,RPR020]"


class TestFiltering:
    def test_line_suppression_moves_finding_to_suppressed(self):
        result = check(
            """
            import random

            def main(ctx):
                ctx.potential_checkpoint()
                x = random.random()  # repro: ignore[RPR020]
                return ctx.allreduce(x, op="sum")
            """
        )
        assert codes(result) == []
        assert [d.code for d in result.suppressed] == ["RPR020"]
        assert result.ok

    def test_suppression_on_other_line_does_not_apply(self):
        result = check(
            """
            import random

            def main(ctx):
                ctx.potential_checkpoint()  # repro: ignore[RPR020]
                x = random.random()
                return ctx.allreduce(x, op="sum")
            """
        )
        assert "RPR020" in codes(result)
        # ...and the misplaced suppression is itself flagged as stale.
        assert "RPR090" in codes(result)

    def test_file_scope_covers_every_line(self):
        result = check(
            """
            # repro: ignore-file[RPR021]
            import time

            def main(ctx):
                ctx.potential_checkpoint()
                a = time.time()
                b = time.perf_counter()
                return ctx.allreduce(a + b, op="sum")
            """
        )
        assert codes(result) == []
        assert [d.code for d in result.suppressed] == ["RPR021", "RPR021"]

    def test_wrong_code_does_not_suppress(self):
        result = check(
            """
            import random

            def main(ctx):
                ctx.potential_checkpoint()
                x = random.random()  # repro: ignore[RPR021]
                return ctx.allreduce(x, op="sum")
            """
        )
        assert "RPR020" in codes(result)


class TestUnusedLint:
    def test_unused_line_suppression_fires_rpr090(self):
        result = check(
            """
            def main(ctx):
                ctx.potential_checkpoint()
                x = 1.0  # repro: ignore[RPR020]
                return ctx.allreduce(x, op="sum")
            """
        )
        assert codes(result) == ["RPR090"]
        diag = next(d for d in result.diagnostics if d.code == "RPR090")
        assert "RPR020" in diag.message
        assert diag.function == "main"

    def test_module_level_suppression_attributes_to_module(self):
        result = check(
            """
            # repro: ignore-file[RPR031]

            def main(ctx):
                ctx.potential_checkpoint()
                return ctx.allreduce(1.0, op="sum")
            """
        )
        diag = next(d for d in result.diagnostics if d.code == "RPR090")
        assert diag.function == "<module>"

    def test_used_suppression_is_not_stale(self):
        result = check(
            """
            import random

            def main(ctx):
                ctx.potential_checkpoint()
                x = random.random()  # repro: ignore[RPR020]
                return ctx.allreduce(x, op="sum")
            """
        )
        assert "RPR090" not in codes(result)

    def test_partially_used_suppression_flags_stale_code(self):
        # One comment lists two codes; only one matches a finding.  The
        # unmatched code is individually stale.
        result = check(
            """
            import random

            def main(ctx):
                ctx.potential_checkpoint()
                x = random.random()  # repro: ignore[RPR020, RPR021]
                return ctx.allreduce(x, op="sum")
            """
        )
        assert codes(result) == ["RPR090"]
        diag = next(d for d in result.diagnostics if d.code == "RPR090")
        assert "RPR021" in diag.message
