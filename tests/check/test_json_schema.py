"""The versioned JSON output contract: ``repro.check/3`` payloads carry
suppression and fix records alongside the diagnostics."""

import json
from pathlib import Path

import pytest

from repro.check.cli import main
from repro.check.diagnostics import SCHEMA

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def run_json(capsys):
    def run(argv):
        main(argv + ["--format", "json"])
        return json.loads(capsys.readouterr().out)

    return run


class TestPayloadSchema:
    def test_schema_is_versioned(self, run_json):
        payload = run_json([str(FIXTURES / "clean_app.py")])
        assert SCHEMA == "repro.check/3"
        assert payload["schema"] == SCHEMA
        assert payload["results"][0]["schema"] == SCHEMA

    def test_result_golden_shape(self, run_json):
        payload = run_json([str(FIXTURES / "clean_app.py")])
        result = payload["results"][0]
        assert sorted(result) == [
            "diagnostics", "functions", "ok", "schema",
            "suppressed", "target",
        ]
        assert result["ok"] is True
        assert result["diagnostics"] == []
        assert result["suppressed"] == []
        assert payload["failed_targets"] == []

    def test_diagnostic_record_fields(self, run_json):
        payload = run_json([str(FIXTURES / "vds_globals.py")])
        record = payload["results"][0]["diagnostics"][0]
        for key in ("code", "severity", "message", "hint",
                    "function", "analysis", "span"):
            assert key in record
        assert record["span"]["line"] > 0

    def test_suppressed_findings_are_recorded(self, run_json):
        payload = run_json([str(FIXTURES / "suppress_used.py")])
        result = payload["results"][0]
        assert result["ok"] is True
        assert result["diagnostics"] == []
        assert [d["code"] for d in result["suppressed"]] == ["RPR020"]

    def test_fix_records_appear_with_fix_flag(self, run_json):
        payload = run_json(
            [str(FIXTURES / "fix_nondet.py"), "--fix", "--dry-run"]
        )
        assert len(payload["fixes"]) == 5
        record = payload["fixes"][0]
        for key in ("code", "file", "line", "col", "title", "replacement"):
            assert key in record

    def test_no_fix_key_without_fix_flag(self, run_json):
        payload = run_json([str(FIXTURES / "clean_app.py")])
        assert "fixes" not in payload
