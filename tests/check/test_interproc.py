"""Interprocedural collective sequencing: rank-divergence taint across
call boundaries (RPR012), the whole-unit p2p census (RPR013), and the
resolution-based refinement of branch mismatches (RPR010)."""

import textwrap

from repro.check import check_app, check_source


def check(source: str):
    return check_source(textwrap.dedent(source), file="<test>")


def codes(result) -> list[str]:
    return sorted(d.code for d in result.diagnostics)


class TestRankDivergentLoops:
    def test_recv_bound_guard_with_collective_body_fires(self):
        result = check(
            """
            def main(ctx):
                err = ctx.recv(source=0, tag=0)
                while err > 0.5:  # divergent bound, collective body
                    ctx.potential_checkpoint()
                    err = ctx.allreduce(err, op="max")
                ctx.send(err, dest=0, tag=0)
                return err
            """
        )
        assert "RPR012" in codes(result)
        diag = next(d for d in result.diagnostics if d.code == "RPR012")
        assert diag.span.line == 4

    def test_taint_flows_through_helper_return(self):
        result = check(
            """
            def local_bound(ctx):
                return ctx.rank * 2

            def main(ctx):
                n = local_bound(ctx)
                for i in range(n):  # bound differs per rank
                    ctx.potential_checkpoint()
                    ctx.barrier()
                return 0
            """
        )
        assert "RPR012" in codes(result)

    def test_collective_result_is_uniform(self):
        # allreduce returns the same value on every rank — a loop bound
        # derived from it is replica-consistent and must not fire.
        result = check(
            """
            def main(ctx):
                n = ctx.allreduce(ctx.rank, op="max")
                for i in range(n):
                    ctx.potential_checkpoint()
                    ctx.barrier()
                return 0
            """
        )
        assert "RPR012" not in codes(result)

    def test_divergent_loop_without_collectives_is_silent(self):
        # Ranks may iterate different counts, but the body performs no
        # collectives — nothing can deadlock.
        result = check(
            """
            def main(ctx):
                x = ctx.recv(source=0, tag=0)
                total = 0.0
                while x > 0.0:
                    total += x
                    x -= 1.0
                ctx.potential_checkpoint()
                return ctx.allreduce(total, op="sum")
            """
        )
        assert "RPR012" not in codes(result)

    def test_collective_inside_callee_body_counts(self):
        result = check(
            """
            def refine(ctx, x):
                return ctx.allreduce(x, op="max")

            def main(ctx):
                err = ctx.recv(source=0, tag=0)
                while err > 0.5:
                    ctx.potential_checkpoint()
                    err = refine(ctx, err)
                ctx.send(err, dest=0, tag=0)
                return err
            """
        )
        assert "RPR012" in codes(result)


class TestP2PCensus:
    def test_unmatched_send_and_recv_each_fire(self):
        result = check(
            """
            def main(ctx):
                ctx.potential_checkpoint()
                ctx.send(1.0, dest=0, tag=3)
                x = ctx.recv(source=0, tag=4)
                return x
            """
        )
        assert codes(result).count("RPR013") == 2

    def test_tags_resolved_via_module_constants(self):
        result = check(
            """
            TAG_HALO = 11

            def main(ctx):
                ctx.potential_checkpoint()
                ctx.send(1.0, dest=0, tag=TAG_HALO)
                x = ctx.recv(source=1, tag=11)
                return x
            """
        )
        assert "RPR013" not in codes(result)

    def test_wildcard_recv_matches_any_send(self):
        result = check(
            """
            def main(ctx):
                ctx.potential_checkpoint()
                ctx.send(1.0, dest=0, tag=9)
                x = ctx.recv(source=0)
                return x
            """
        )
        assert "RPR013" not in codes(result)

    def test_dynamic_tag_send_matches_everything(self):
        result = check(
            """
            def main(ctx):
                ctx.potential_checkpoint()
                ctx.send(1.0, dest=0, tag=ctx.rank)
                x = ctx.recv(source=0, tag=5)
                return x
            """
        )
        assert "RPR013" not in codes(result)

    def test_census_spans_functions(self):
        # The send and its matching recv live in different unit
        # functions; the census is whole-unit, so the pair matches.
        result = check(
            """
            def push(ctx, x):
                ctx.send(x, dest=0, tag=2)

            def pull(ctx):
                return ctx.recv(source=1, tag=2)

            def main(ctx):
                ctx.potential_checkpoint()
                push(ctx, 1.0)
                return pull(ctx)
            """
        )
        assert "RPR013" not in codes(result)


class TestBranchResolution:
    def test_equivalent_helpers_suppress_rpr010(self):
        # Both arms call a different helper, but both helpers reduce to
        # the same collective sequence — resolution proves equivalence.
        result = check(
            """
            def sum_all(ctx, x):
                return ctx.allreduce(x, op="sum")

            def max_all(ctx, x):
                return ctx.allreduce(x, op="max")

            def main(ctx):
                ctx.potential_checkpoint()
                if ctx.rank % 2 == 0:
                    y = sum_all(ctx, 1.0)
                else:
                    y = max_all(ctx, 1.0)
                return y
            """
        )
        assert "RPR010" not in codes(result)

    def test_divergent_helpers_still_fire(self):
        result = check(
            """
            def noisy(ctx, x):
                ctx.barrier()
                return ctx.allreduce(x, op="sum")

            def quiet(ctx, x):
                return x

            def main(ctx):
                ctx.potential_checkpoint()
                if ctx.rank % 2 == 0:
                    y = noisy(ctx, 1.0)
                else:
                    y = quiet(ctx, 1.0)
                return y
            """
        )
        assert "RPR014" in codes(result)


class TestLaplaceRegression:
    def test_laplace_halo_exchange_verifies_clean(self):
        # The rank-parity halo exchange used to need a hand-written p2p
        # carve-out; the interprocedural census must now prove it
        # balanced on its own.
        from repro.apps import laplace  # noqa: F401  (registers the app)

        result = check_app("laplace")
        assert result.ok, [d.code for d in result.diagnostics]
        assert codes(result) == []
