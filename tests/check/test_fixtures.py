"""The seeded-violation corpus: every fixture must produce *exactly* its
inline ``# CHECK: RPRxxx`` expectations — same codes, same lines — and the
corpus as a whole must exercise every registered diagnostic code."""

import re
from pathlib import Path

import pytest

from repro.check import CODES, check_path

FIXTURE_DIR = Path(__file__).parent / "fixtures"
FIXTURES = sorted(FIXTURE_DIR.glob("*.py"))

CHECK_RE = re.compile(r"# CHECK: (RPR\d{3})")


def expected_marks(path: Path) -> list[tuple[str, int]]:
    out = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        for match in CHECK_RE.finditer(line):
            out.append((match.group(1), lineno))
    return sorted(out)


def test_corpus_exists():
    assert len(FIXTURES) >= 10


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_fixture_produces_exactly_expected_diagnostics(path):
    result = check_path(str(path))
    got = sorted((d.code, d.span.line) for d in result.diagnostics)
    assert got == expected_marks(path)
    for diag in result.diagnostics:
        assert diag.span.file == str(path)
        assert diag.span.col >= 0
        assert diag.function  # every finding names its function
        assert diag.hint  # and carries a fix hint


def test_corpus_covers_every_registered_code():
    fired = {
        code for path in FIXTURES for code, _ in expected_marks(path)
    }
    assert fired == set(CODES)


def test_every_analysis_has_two_fixtures():
    by_analysis: dict[str, set[str]] = {}
    for path in FIXTURES:
        marks = expected_marks(path)
        for code, _ in marks:
            by_analysis.setdefault(CODES[code].analysis, set()).add(path.stem)
    for analysis, fixtures in by_analysis.items():
        assert len(fixtures) >= 2, (
            f"analysis {analysis!r} is seeded by only {fixtures}"
        )
