"""The seeded-violation corpus: every fixture must produce *exactly* its
inline ``# CHECK: RPRxxx`` expectations — same codes, same lines — and the
corpus as a whole must exercise every registered diagnostic code.

A fixture that pulls a sibling module into its unit (via the v3
import-graph slicer) declares it with ``# ALSO-CHECKS: <sibling>.py``:
the sibling's own marks are then expected to fire *again* through the
joined unit, with spans still pointing into the sibling file."""

import re
from pathlib import Path

import pytest

from repro.check import CODES, check_path

FIXTURE_DIR = Path(__file__).parent / "fixtures"
FIXTURES = sorted(FIXTURE_DIR.glob("*.py"))

CHECK_RE = re.compile(r"# CHECK: (RPR\d{3})")
ALSO_RE = re.compile(r"# ALSO-CHECKS: (\S+)")


def expected_marks(path: Path) -> list[tuple[str, int]]:
    out = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        for match in CHECK_RE.finditer(line):
            out.append((match.group(1), lineno))
    return sorted(out)


def also_checked(path: Path) -> list[Path]:
    return [path.parent / name for name in ALSO_RE.findall(path.read_text())]


def test_corpus_exists():
    assert len(FIXTURES) >= 10


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_fixture_produces_exactly_expected_diagnostics(path):
    siblings = also_checked(path)
    result = check_path(str(path))
    got = sorted((d.code, d.span.line) for d in result.diagnostics)
    expected = sorted(
        expected_marks(path)
        + [mark for sib in siblings for mark in expected_marks(sib)]
    )
    assert got == expected
    allowed_files = {str(path)} | {str(sib) for sib in siblings}
    for diag in result.diagnostics:
        assert diag.span.file in allowed_files
        assert diag.span.col >= 0
        assert diag.function  # every finding names its function
        assert diag.hint  # and carries a fix hint


def test_corpus_covers_every_registered_code():
    fired = {
        code for path in FIXTURES for code, _ in expected_marks(path)
    }
    assert fired == set(CODES)


def test_every_analysis_has_two_fixtures():
    by_analysis: dict[str, set[str]] = {}
    for path in FIXTURES:
        marks = expected_marks(path)
        for code, _ in marks:
            by_analysis.setdefault(CODES[code].analysis, set()).add(path.stem)
    for analysis, fixtures in by_analysis.items():
        assert len(fixtures) >= 2, (
            f"analysis {analysis!r} is seeded by only {fixtures}"
        )
