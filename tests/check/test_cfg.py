"""The summary regular language and the per-function CFG."""

import ast
import textwrap

from repro.check.cfg import (
    EPS,
    Alt,
    CallRef,
    Seq,
    Star,
    Tok,
    build_cfg,
    collectives_in,
    equivalent,
    function_summary,
    has_unknown,
    normalize,
    resolve,
    unresolved_calls,
)

COLLECTIVES = frozenset({"allreduce", "barrier", "bcast", "reduce"})


def fn(source: str) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(source))
    return next(n for n in tree.body if isinstance(n, ast.FunctionDef))


def summary(source: str, unit=()):
    return function_summary(
        fn(source), COLLECTIVES, frozenset({"ctx"}), frozenset(unit)
    )


class TestNormalize:
    def test_seq_flattens_and_drops_eps(self):
        s = Seq((EPS, Seq((Tok("barrier"), EPS)), Tok("allreduce")))
        assert normalize(s).render() == "barrier allreduce"

    def test_alt_dedupes(self):
        s = Alt((Tok("barrier"), Tok("barrier")))
        assert normalize(s).render() == "barrier"

    def test_star_of_eps_is_eps(self):
        assert normalize(Star(EPS)) is EPS

    def test_nested_star_collapses(self):
        assert normalize(Star(Star(Tok("barrier")))).render() == "(barrier)*"

    def test_equivalence_is_on_normal_forms(self):
        a = Seq((EPS, Tok("barrier")))
        b = Tok("barrier")
        assert equivalent(a, b)


class TestResolve:
    def test_callref_substitutes_callee_summary(self):
        env = {"helper": Tok("allreduce")}
        assert resolve(CallRef("helper"), env).render() == "allreduce"

    def test_unknown_on_recursion(self):
        env = {"f": Seq((Tok("barrier"), CallRef("f")))}
        resolved = resolve(CallRef("f"), env)
        assert has_unknown(resolved)

    def test_external_calls_contribute_nothing(self):
        assert resolve(CallRef("print"), {}) is EPS

    def test_unresolved_calls_enumerates(self):
        s = Seq((CallRef("a"), Alt((CallRef("b"), Tok("barrier")))))
        assert unresolved_calls(s) == ("a", "b")


class TestFunctionSummary:
    def test_straight_line(self):
        s = summary(
            """
            def main(ctx):
                ctx.barrier()
                x = ctx.allreduce(1.0, op="sum")
                return x
            """
        )
        assert s.render() == "barrier allreduce"

    def test_branch_merges_to_alt(self):
        s = summary(
            """
            def main(ctx):
                if ctx.rank == 0:
                    ctx.barrier()
                else:
                    ctx.bcast(1, root=0)
                return 0
            """
        )
        assert s.render() == "(barrier | bcast)"

    def test_loop_merges_to_star(self):
        s = summary(
            """
            def main(ctx):
                for i in range(4):
                    ctx.allreduce(i, op="sum")
                return 0
            """
        )
        assert s.render() == "(allreduce)*"

    def test_unit_call_becomes_callref(self):
        s = summary(
            """
            def main(ctx):
                helper(ctx)
                return 0
            """,
            unit=("helper",),
        )
        assert s.render() == "call:helper"

    def test_non_comm_receiver_is_ignored(self):
        s = summary(
            """
            def main(ctx):
                lock.barrier()
                return 0
            """
        )
        assert s is EPS

    def test_collectives_in_collects_language_tokens(self):
        s = summary(
            """
            def main(ctx):
                ctx.barrier()
                if ctx.rank == 0:
                    ctx.reduce(1, root=0)
                return 0
            """
        )
        assert collectives_in(s) == ("barrier", "reduce")


class TestBuildCFG:
    def test_if_produces_branch_edges(self):
        cfg = build_cfg(fn(
            """
            def main(ctx):
                if ctx.rank == 0:
                    x = 1
                else:
                    x = 2
                return x
            """
        ))
        kinds = {k for b in cfg.blocks for k, _ in b.edges}
        assert {"then", "else", "seq", "exit"} <= kinds

    def test_loop_has_backedge(self):
        cfg = build_cfg(fn(
            """
            def main(ctx):
                for i in range(4):
                    ctx.compute(1.0)
                return 0
            """
        ))
        kinds = {k for b in cfg.blocks for k, _ in b.edges}
        assert "back" in kinds and "loop" in kinds

    def test_all_blocks_reach_from_entry(self):
        cfg = build_cfg(fn(
            """
            def main(ctx):
                x = 0
                while x < 3:
                    x += 1
                    if x == 2:
                        break
                return x
            """
        ))
        reachable = cfg.reachable()
        assert cfg.exit in reachable

    def test_return_edges_to_exit(self):
        cfg = build_cfg(fn(
            """
            def main(ctx):
                return 1
            """
        ))
        assert any(
            ("exit", cfg.exit) in b.edges for b in cfg.blocks
        )
