"""The incremental check cache: content-hash keys over the sibling
import closure, cold-vs-warm behaviour through the CLI, and the metrics
counters the summary line reports."""

import textwrap

from repro.check import CheckCache, check_path
from repro.check.cache import METRICS
from repro.check.cli import main

APP = '''
from halo import exchange


def main(ctx):
    ctx.potential_checkpoint()
    acc = exchange(ctx, 0.0)
    return ctx.allreduce(acc, op="sum")
'''

HALO = '''
def exchange(ctx, value):
    ctx.potential_checkpoint()
    import random
    return value + random.random()
'''


def write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


class TestKeying:
    def test_same_content_same_key(self, tmp_path):
        app = write(tmp_path, "app.py", APP)
        write(tmp_path, "halo.py", HALO)
        assert CheckCache.key_for(str(app)) == CheckCache.key_for(str(app))

    def test_editing_the_target_changes_the_key(self, tmp_path):
        app = write(tmp_path, "app.py", APP)
        write(tmp_path, "halo.py", HALO)
        before = CheckCache.key_for(str(app))
        app.write_text(app.read_text() + "\n# touched\n")
        assert CheckCache.key_for(str(app)) != before

    def test_editing_a_sibling_changes_the_key(self, tmp_path):
        # The whole point of closing over sibling imports: editing
        # halo.py must invalidate the cached verdict of app.py.
        app = write(tmp_path, "app.py", APP)
        halo = write(tmp_path, "halo.py", HALO)
        before = CheckCache.key_for(str(app))
        halo.write_text(halo.read_text() + "\n# touched\n")
        assert CheckCache.key_for(str(app)) != before

    def test_unrelated_files_do_not_affect_the_key(self, tmp_path):
        app = write(tmp_path, "app.py", APP)
        write(tmp_path, "halo.py", HALO)
        before = CheckCache.key_for(str(app))
        write(tmp_path, "bystander.py", "X = 1\n")
        assert CheckCache.key_for(str(app)) == before


class TestRoundTrip:
    def test_put_get_preserves_the_result(self, tmp_path):
        app = write(tmp_path, "app.py", APP)
        write(tmp_path, "halo.py", HALO)
        result = check_path(str(app))
        cache = CheckCache(str(tmp_path / "cache"))
        key = CheckCache.key_for(str(app))
        cache.put(key, result)
        cached = cache.get(key)
        assert cached is not None
        assert cached.to_dict() == result.to_dict()

    def test_miss_returns_none_and_counts(self, tmp_path):
        cache = CheckCache(str(tmp_path / "cache"))
        before = METRICS.snapshot()["counters"].get("check.cache.miss", 0)
        assert cache.get("no-such-key") is None
        after = METRICS.snapshot()["counters"].get("check.cache.miss", 0)
        assert after == before + 1

    def test_hit_counts(self, tmp_path):
        app = write(tmp_path, "app.py", APP)
        write(tmp_path, "halo.py", HALO)
        cache = CheckCache(str(tmp_path / "cache"))
        key = CheckCache.key_for(str(app))
        cache.put(key, check_path(str(app)))
        before = METRICS.snapshot()["counters"].get("check.cache.hit", 0)
        assert cache.get(key) is not None
        after = METRICS.snapshot()["counters"].get("check.cache.hit", 0)
        assert after == before + 1


class TestCLIColdWarm:
    def test_warm_run_analyzes_nothing(self, tmp_path, capsys):
        app = write(tmp_path, "app.py", APP)
        write(tmp_path, "halo.py", HALO)
        cache_dir = str(tmp_path / "cache")
        main([str(app), "--cache-dir", cache_dir, "--fail-on", "never"])
        cold = capsys.readouterr().out
        assert "cache: 0 hit(s), 1 analyzed" in cold
        main([str(app), "--cache-dir", cache_dir, "--fail-on", "never"])
        warm = capsys.readouterr().out
        assert "cache: 1 hit(s), 0 analyzed" in warm

    def test_warm_run_reports_identical_findings(self, tmp_path, capsys):
        app = write(tmp_path, "app.py", APP)
        write(tmp_path, "halo.py", HALO)
        cache_dir = str(tmp_path / "cache")
        main([str(app), "--cache-dir", cache_dir, "--fail-on", "never"])
        cold = capsys.readouterr().out
        main([str(app), "--cache-dir", cache_dir, "--fail-on", "never"])
        warm = capsys.readouterr().out
        strip = lambda out: [
            line for line in out.splitlines()
            if not line.startswith("cache:")
        ]
        assert strip(cold) == strip(warm)

    def test_editing_a_sibling_reanalyzes(self, tmp_path, capsys):
        app = write(tmp_path, "app.py", APP)
        halo = write(tmp_path, "halo.py", HALO)
        cache_dir = str(tmp_path / "cache")
        main([str(app), "--cache-dir", cache_dir, "--fail-on", "never"])
        capsys.readouterr()
        halo.write_text(halo.read_text().replace(
            "import random\n    return value + random.random()",
            "return value",
        ))
        main([str(app), "--cache-dir", cache_dir, "--fail-on", "never"])
        out = capsys.readouterr().out
        assert "cache: 0 hit(s), 1 analyzed" in out

    def test_check_seconds_histogram_is_observed(self, tmp_path):
        app = write(tmp_path, "app.py", APP)
        write(tmp_path, "halo.py", HALO)
        before = METRICS.snapshot()["histograms"].get(
            "check.seconds", {}
        ).get("count", 0)
        main([str(app), "--fail-on", "never"])
        after = METRICS.snapshot()["histograms"].get(
            "check.seconds", {}
        ).get("count", 0)
        assert after == before + 1
