"""Span accuracy for live callables, including decorated/wrapped
functions — ``functools.wraps`` used to drift every diagnostic onto the
wrapper's line numbers."""

import importlib.util
import sys
import textwrap

import pytest

from repro.check import check_functions

WRAPPED_MODULE = '''\
"""Module whose unit function hides behind a wrapping decorator."""

import functools
import time


def traced(fn):
    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        return fn(*args, **kwargs)

    return wrapper


@traced
def main(ctx):
    ctx.potential_checkpoint()
    t = time.time()
    return ctx.allreduce(t, op="sum")
'''


@pytest.fixture
def wrapped_module(tmp_path):
    path = tmp_path / "wrapped_app.py"
    path.write_text(WRAPPED_MODULE)
    spec = importlib.util.spec_from_file_location("wrapped_app", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["wrapped_app"] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop("wrapped_app", None)


class TestDecoratedSpans:
    def test_wrapped_function_diagnostic_lands_on_real_line(
        self, wrapped_module
    ):
        # time.time() sits on line 18 of the module; before the unwrap
        # fix the span pointed into the decorator factory instead.
        result = check_functions([wrapped_module.main], target="wrapped")
        diag = next(d for d in result.diagnostics if d.code == "RPR021")
        assert diag.span.line == 18
        assert diag.span.file.endswith("wrapped_app.py")
        assert diag.function == "main"

    def test_wrapped_source_line_matches_span(self, wrapped_module, tmp_path):
        result = check_functions([wrapped_module.main], target="wrapped")
        diag = next(d for d in result.diagnostics if d.code == "RPR021")
        lines = (tmp_path / "wrapped_app.py").read_text().splitlines()
        assert "time.time()" in lines[diag.span.line - 1]


class TestUndecoratedSpans:
    def test_plain_function_spans_are_absolute(self, tmp_path):
        path = tmp_path / "plain_app.py"
        path.write_text(textwrap.dedent(
            '''
            import random


            def main(ctx):
                ctx.potential_checkpoint()
                x = random.random()
                return ctx.allreduce(x, op="sum")
            '''
        ))
        spec = importlib.util.spec_from_file_location("plain_app", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules["plain_app"] = module
        try:
            spec.loader.exec_module(module)
            result = check_functions([module.main], target="plain")
        finally:
            sys.modules.pop("plain_app", None)
        diag = next(d for d in result.diagnostics if d.code == "RPR020")
        lines = path.read_text().splitlines()
        assert "random.random()" in lines[diag.span.line - 1]
