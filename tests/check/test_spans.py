"""Span accuracy for live callables, including decorated/wrapped
functions — ``functools.wraps`` used to drift every diagnostic onto the
wrapper's line numbers."""

import importlib.util
import sys
import textwrap

import pytest

from repro.check import check_functions

WRAPPED_MODULE = '''\
"""Module whose unit function hides behind a wrapping decorator."""

import functools
import time


def traced(fn):
    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        return fn(*args, **kwargs)

    return wrapper


@traced
def main(ctx):
    ctx.potential_checkpoint()
    t = time.time()
    return ctx.allreduce(t, op="sum")
'''


@pytest.fixture
def wrapped_module(tmp_path):
    path = tmp_path / "wrapped_app.py"
    path.write_text(WRAPPED_MODULE)
    spec = importlib.util.spec_from_file_location("wrapped_app", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["wrapped_app"] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop("wrapped_app", None)


class TestDecoratedSpans:
    def test_wrapped_function_diagnostic_lands_on_real_line(
        self, wrapped_module
    ):
        # time.time() sits on line 18 of the module; before the unwrap
        # fix the span pointed into the decorator factory instead.
        result = check_functions([wrapped_module.main], target="wrapped")
        diag = next(d for d in result.diagnostics if d.code == "RPR021")
        assert diag.span.line == 18
        assert diag.span.file.endswith("wrapped_app.py")
        assert diag.function == "main"

    def test_wrapped_source_line_matches_span(self, wrapped_module, tmp_path):
        result = check_functions([wrapped_module.main], target="wrapped")
        diag = next(d for d in result.diagnostics if d.code == "RPR021")
        lines = (tmp_path / "wrapped_app.py").read_text().splitlines()
        assert "time.time()" in lines[diag.span.line - 1]


STACKED_MODULE = '''\
"""Unit function hidden behind a *chain* of wrapping decorators."""

import functools
import time


def traced(fn):
    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        return fn(*args, **kwargs)

    return wrapper


def retried(fn):
    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        return fn(*args, **kwargs)

    return wrapper


@traced
@retried
def main(ctx):
    ctx.potential_checkpoint()
    t = time.time()
    return ctx.allreduce(t, op="sum")
'''


@pytest.fixture
def stacked_module(tmp_path):
    path = tmp_path / "stacked_app.py"
    path.write_text(STACKED_MODULE)
    spec = importlib.util.spec_from_file_location("stacked_app", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["stacked_app"] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop("stacked_app", None)


class TestStackedDecoratorSpans:
    def test_unwrap_follows_the_whole_wrapper_chain(self, stacked_module):
        result = check_functions([stacked_module.main], target="stacked")
        diag = next(d for d in result.diagnostics if d.code == "RPR021")
        lines = STACKED_MODULE.splitlines()
        assert "time.time()" in lines[diag.span.line - 1]
        assert diag.span.file.endswith("stacked_app.py")
        assert diag.function == "main"

    def test_every_span_lands_inside_the_original_def(self, stacked_module):
        result = check_functions([stacked_module.main], target="stacked")
        lines = STACKED_MODULE.splitlines()
        def_line = next(
            i for i, text in enumerate(lines, 1)
            if text.startswith("def main")
        )
        for diag in result.diagnostics:
            assert diag.span.line >= def_line


class TestPrecompiledDualFormSpans:
    def test_compile_diagnostics_use_original_coordinates(
        self, stacked_module, tmp_path
    ):
        # The precompiler checks the *original* defs and then builds both
        # cores (sync + co_ generator twin); the attached diagnostics
        # must keep pointing at the original file regardless.
        from repro.precompiler.api import Precompiler

        unit = Precompiler([stacked_module.main]).compile()
        assert unit.co_functions  # the dual form exists
        diag = next(d for d in unit.diagnostics if d.code == "RPR021")
        lines = (tmp_path / "stacked_app.py").read_text().splitlines()
        assert "time.time()" in lines[diag.span.line - 1]
        assert diag.span.file.endswith("stacked_app.py")

    def test_both_cores_share_the_func_id(self, stacked_module):
        from repro.precompiler.api import Precompiler

        unit = Precompiler([stacked_module.main]).compile()
        sync_id = unit.code_map[unit.functions["main"].__code__]
        co_id = unit.code_map[unit.co_functions["main"].__code__]
        assert sync_id == co_id


class TestUndecoratedSpans:
    def test_plain_function_spans_are_absolute(self, tmp_path):
        path = tmp_path / "plain_app.py"
        path.write_text(textwrap.dedent(
            '''
            import random


            def main(ctx):
                ctx.potential_checkpoint()
                x = random.random()
                return ctx.allreduce(x, op="sum")
            '''
        ))
        spec = importlib.util.spec_from_file_location("plain_app", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules["plain_app"] = module
        try:
            spec.loader.exec_module(module)
            result = check_functions([module.main], target="plain")
        finally:
            sys.modules.pop("plain_app", None)
        diag = next(d for d in result.diagnostics if d.code == "RPR020")
        lines = path.read_text().splitlines()
        assert "random.random()" in lines[diag.span.line - 1]
