"""CommLike conformance: every stage stack exposes one surface.

The conformance suite is parametrized over *all registered stacks* —
the built-in V0–V3 plus a custom user-registered composition — so any
new stage stack is conformance-checked for free.
"""

import inspect

import pytest

from repro.api.comms import CommLike, RawCommAdapter, RawHandle
from repro.errors import ProtocolError
from repro.protocol.layer import C3Layer
from repro.protocol.stages import (
    FULL_STACK,
    ProtocolPipeline,
    ProtocolStage,
    list_stacks,
    register_stack,
    register_stage,
)
from repro.runtime import RunConfig, Variant, run_with_recovery
from repro.simmpi import SUM

#: Every method the protocol names (the paper's Figure-2 surface).
COMMLIKE_METHODS = (
    "send", "isend", "recv", "irecv", "wait", "test", "sendrecv",
    "bcast", "reduce", "allreduce", "gather", "allgather", "scatter",
    "alltoall", "scan", "barrier",
    "comm_dup", "comm_split", "op_create", "comm_rank", "comm_size",
    "potential_checkpoint", "nondet",
)


class _ConformanceTraceStage(ProtocolStage):
    """Custom observer stage: proves user stages ride the pipeline."""

    name = "conformance-trace"

    def on_send(self, payload, dest, tag):
        pass

    def on_receive(self, env):
        pass


register_stage("conformance-trace", _ConformanceTraceStage, replace=True)
register_stack(
    "conformance-custom",
    FULL_STACK + ("conformance-trace",),
    description="V3 plus a tracing observer stage (conformance fixture)",
    replace=True,
)

#: Evaluated at collection time: V0-V3 plus the custom stack above (and
#: any stack registered before this module imports).
ALL_STACKS = list_stacks()


@pytest.mark.parametrize("impl", [C3Layer, RawCommAdapter, ProtocolPipeline])
def test_class_declares_full_surface(impl):
    for name in COMMLIKE_METHODS:
        member = inspect.getattr_static(impl, name)
        assert callable(member), f"{impl.__name__}.{name} is not callable"


def conformance_app(ctx):
    """Exercises the full CommLike surface and returns a digest."""
    mpi = ctx.mpi
    assert isinstance(mpi, CommLike)
    for name in COMMLIKE_METHODS:
        assert callable(getattr(mpi, name)), name
    state = ctx.checkpointable_state(lambda: {"i": 0, "acc": 0})
    peer = (ctx.rank + 1) % ctx.size
    prev = (ctx.rank - 1) % ctx.size
    while state["i"] < 8:
        sreq = mpi.isend(state["i"] * 10 + ctx.rank, peer, tag=2)
        rreq = mpi.irecv(source=prev, tag=2)
        got = mpi.wait(rreq)
        mpi.wait(sreq)
        state["acc"] += got + mpi.allreduce(ctx.nondet(lambda: 1), SUM)
        state["acc"] += mpi.sendrecv(got, peer, prev, send_tag=3)
        state["i"] += 1
        ctx.potential_checkpoint()
    dup = mpi.comm_dup()
    total = mpi.allreduce(1, SUM, comm=dup)
    mpi.barrier()
    return (state["acc"], total, mpi.comm_rank(), mpi.comm_size())


@pytest.mark.parametrize("stack", ALL_STACKS)
def test_stack_conformance(stack):
    """Every registered stack satisfies CommLike and computes the same
    answer for the same seed (the protocol is application-transparent)."""
    cfg = RunConfig(nprocs=3, seed=13, stack=stack,
                    checkpoint_interval=0.002, detector_timeout=0.04)
    out = run_with_recovery(conformance_app, cfg)
    baseline = run_with_recovery(
        conformance_app,
        RunConfig(nprocs=3, seed=13, variant=Variant.UNMODIFIED),
    )
    assert out.results == baseline.results


def test_custom_stack_observer_stage_sees_traffic():
    """The custom stage is dispatched and shows up in per-stage counters."""
    cfg = RunConfig(nprocs=2, seed=1, stack="conformance-custom",
                    checkpoint_interval=0.002, detector_timeout=0.04)
    out = run_with_recovery(conformance_app, cfg)
    totals = out.stage_totals()
    assert totals["conformance-trace"]["calls"] > 0
    # The observer rides along with all six built-in stages.
    for name in FULL_STACK:
        assert name in totals


@pytest.mark.parametrize(
    "variant, expected",
    [
        (Variant.UNMODIFIED, "RawCommAdapter"),
        (Variant.PIGGYBACK, "C3Layer"),
        (Variant.NO_APP_STATE, "C3Layer"),
        (Variant.FULL, "C3Layer"),
    ],
)
def test_isinstance_commlike_under_every_variant(variant, expected):
    """The live ``ctx.mpi`` object satisfies the runtime protocol check."""

    def app(ctx):
        assert isinstance(ctx.mpi, CommLike)
        return type(ctx.mpi).__name__

    cfg = RunConfig(nprocs=2, seed=1, variant=variant,
                    checkpoint_interval=0.002, detector_timeout=0.04)
    out = run_with_recovery(app, cfg)
    assert out.results == [expected, expected]


def test_app_runs_unmodified_under_all_variants():
    """One instrumented app, four variants, identical answers — including
    V0 where the hooks are no-ops on the raw adapter."""

    def app(ctx):
        state = ctx.checkpointable_state(lambda: {"i": 0, "acc": 0})
        while state["i"] < 25:
            state["acc"] += ctx.mpi.allreduce(
                state["i"] + ctx.nondet(lambda: 1), SUM
            )
            state["i"] += 1
            ctx.potential_checkpoint()
        return state["acc"]

    results = {}
    for variant in Variant:
        cfg = RunConfig(nprocs=3, seed=5, variant=variant,
                        checkpoint_interval=0.002, detector_timeout=0.04)
        results[variant] = run_with_recovery(app, cfg).results
    assert len({tuple(r) for r in results.values()}) == 1


class TestRawCommAdapter:
    def run_app(self, app, nprocs=2, seed=0):
        cfg = RunConfig(nprocs=nprocs, seed=seed, variant=Variant.UNMODIFIED)
        return run_with_recovery(app, cfg)

    def test_point_to_point_and_requests(self):
        def app(ctx):
            peer = (ctx.rank + 1) % ctx.size
            req = ctx.mpi.isend(ctx.rank * 10, peer, tag=3)
            rreq = ctx.mpi.irecv(source=(ctx.rank - 1) % ctx.size, tag=3)
            got = ctx.mpi.wait(rreq)
            ctx.mpi.wait(req)
            assert ctx.mpi.test(req)
            back = ctx.mpi.sendrecv(got, peer, (ctx.rank - 1) % ctx.size, send_tag=4)
            return (got, back)

        out = self.run_app(app, nprocs=3)
        assert [g for g, _ in out.results] == [20, 0, 10]

    def test_communicator_construction_and_handles(self):
        def app(ctx):
            dup = ctx.mpi.comm_dup()
            assert ctx.mpi.comm_rank(dup) == ctx.rank
            assert ctx.mpi.comm_size(dup) == ctx.size
            total = ctx.mpi.allreduce(1, SUM, comm=dup)
            half = ctx.mpi.comm_split(color=ctx.rank % 2)
            sub = ctx.mpi.allreduce(ctx.rank, SUM, comm=half)
            ctx.mpi.barrier()
            return (total, sub)

        out = self.run_app(app, nprocs=4)
        assert out.results == [(4, 0 + 2), (4, 1 + 3), (4, 0 + 2), (4, 1 + 3)]

    def test_op_create_returns_usable_handle(self):
        def app(ctx):
            h = ctx.mpi.op_create("rawmax2", lambda a, b: max(a, b))
            assert isinstance(h, RawHandle)
            return ctx.mpi.allreduce(ctx.rank, h._live)

        out = self.run_app(app, nprocs=3)
        assert out.results == [2, 2, 2]

    def test_hooks_are_noops(self):
        def app(ctx):
            assert ctx.potential_checkpoint() is False
            return ctx.nondet(lambda: 7)

        assert self.run_app(app).results == [7, 7]

    def test_no_piggyback_on_wire(self):
        def app(ctx):
            peer = (ctx.rank + 1) % ctx.size
            ctx.mpi.send("x", peer, tag=1)
            env = ctx.mpi.comm.recv_envelope(source=(ctx.rank - 1) % ctx.size, tag=1)
            return env.piggyback

        assert self.run_app(app).results == [None, None]

    def test_initiator_hook_rejected(self):
        def app(ctx):
            with pytest.raises(ProtocolError):
                ctx.mpi.request_checkpoint_now()
            return True

        assert self.run_app(app).results == [True, True]
