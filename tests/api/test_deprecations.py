"""The top-level deprecation shims must actually warn — and still work."""

import warnings

import pytest

import repro
from repro.runtime.config import RunConfig, Variant


def tiny_app(ctx):
    from repro.simmpi import SUM

    return ctx.mpi.allreduce(ctx.rank, SUM)


class TestRunWithRecoveryShim:
    def test_emits_deprecation_warning(self):
        cfg = RunConfig(nprocs=2, checkpoint_interval=None)
        with pytest.warns(DeprecationWarning, match="Session"):
            out = repro.run_with_recovery(tiny_app, cfg)
        assert out.results == [1, 1]

    def test_warning_points_at_caller(self):
        """stacklevel=2: the warning should blame this file, not repro's."""
        cfg = RunConfig(nprocs=2, checkpoint_interval=None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repro.run_with_recovery(tiny_app, cfg)
        [warning] = [w for w in caught if w.category is DeprecationWarning]
        assert warning.filename == __file__


class TestRunVariantSuiteShim:
    def test_emits_deprecation_warning(self):
        cfg = RunConfig(nprocs=2, checkpoint_interval=None)
        with pytest.warns(DeprecationWarning, match="sweep"):
            outcomes = repro.run_variant_suite(
                tiny_app, cfg, variants=(Variant.UNMODIFIED,)
            )
        assert outcomes[Variant.UNMODIFIED].results == [1, 1]


class TestModernPathsDoNotWarn:
    def test_session_run_is_warning_free(self):
        cfg = RunConfig(nprocs=2, checkpoint_interval=None)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            out = repro.Session().run(tiny_app, cfg)
        assert out.results == [1, 1]
