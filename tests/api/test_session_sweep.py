"""Session facade and sweep semantics (identity with the serial path)."""

import pytest

import repro
from repro import RunConfig, Session, Variant
from repro.api.registry import AppSpec, get_app, list_apps
from repro.api.session import ALL_VARIANTS, default_storage_factory
from repro.errors import ConfigError
from repro.runtime.driver import run_variant_suite
from repro.simmpi import SUM, FailureSchedule
from repro.statesave.storage import Storage

CFG = dict(nprocs=3, seed=4, checkpoint_interval=0.002, detector_timeout=0.04)


@repro.app(name="ring-acc", default_params=20)
def ring_app(ctx):
    """Ring exchange + allreduce accumulator (test workload)."""
    state = ctx.checkpointable_state(lambda: {"i": 0, "acc": 0.0})
    n = ctx.params if ctx.params is not None else 20
    while state["i"] < n:
        right = (ctx.rank + 1) % ctx.size
        ctx.mpi.send(float(state["i"]), right, tag=1)
        incoming = ctx.mpi.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
        state["acc"] += ctx.mpi.allreduce(incoming, SUM)
        state["i"] += 1
        ctx.potential_checkpoint()
    return state["acc"]


@repro.app(name="param-driven", default_params=8)
def param_driven_app(ctx):
    """Iteration count from ctx.params; accepts a callable (for the
    unpicklable-param fallback tests)."""
    n = ctx.params() if callable(ctx.params) else ctx.params
    state = ctx.checkpointable_state(lambda: {"i": 0, "acc": 0})
    while state["i"] < n:
        state["acc"] += ctx.mpi.allreduce(state["i"], SUM)
        state["i"] += 1
        ctx.potential_checkpoint()
    return state["acc"]


def counting_storage_factory():
    storage = Storage(None)
    counting_storage_factory.created.append(storage)
    return storage


counting_storage_factory.created = []


class TestRegistry:
    def test_decorator_registers(self):
        spec = get_app("ring-acc")
        assert spec.name == "ring-acc"
        assert spec.module == __name__
        assert spec.default_params == 20

    def test_catalogue_autoloads_paper_apps(self):
        apps = list_apps()
        assert {"dense_cg", "laplace", "neurosys"} <= set(apps)

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigError, match="unknown app"):
            get_app("no-such-app")

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            repro.register(
                AppSpec(name="dense_cg", factory=lambda p: None, module="elsewhere")
            )


class TestSessionRun:
    def test_run_by_name_matches_run_by_callable(self):
        session = Session()
        cfg = RunConfig(**CFG)
        by_name = session.run("ring-acc", cfg, params=20)
        by_fn = session.run(ring_app, cfg)  # decorated fn resolves to its spec
        assert by_name.results == by_fn.results
        assert by_name.checkpoints_committed >= 1

    def test_session_storage_factory_used(self):
        counting_storage_factory.created.clear()
        session = Session(storage_factory=counting_storage_factory)
        out = session.run("ring-acc", RunConfig(**CFG))
        assert len(counting_storage_factory.created) == 1
        assert counting_storage_factory.created[0].commits == out.checkpoints_committed

    def test_explicit_storage_wins(self):
        storage = Storage(None)
        Session().run("ring-acc", RunConfig(**CFG), storage=storage)
        assert storage.commits >= 1

    def test_failures_trigger_recovery(self):
        session = Session()
        cfg = RunConfig(**CFG)
        gold = session.run("ring-acc", cfg)
        out = session.run(
            "ring-acc", cfg, failures=FailureSchedule.single(0.004, 1)
        )
        assert len(out.attempts) == 2
        assert out.results == gold.results


class TestSweep:
    def test_sweep_matches_serial_variant_suite(self):
        """The acceptance check: four Figure-8 variants through the parallel
        sweep give per-rank results identical to run_variant_suite."""
        cfg = RunConfig(**CFG)
        serial = run_variant_suite(ring_app, cfg)
        swept = Session().sweep("ring-acc", cfg, params=[20]).by_variant()
        assert set(swept) == set(serial)
        for variant, outcome in serial.items():
            assert swept[variant].results == outcome.results, variant
            assert (
                swept[variant].checkpoints_committed
                == outcome.checkpoints_committed
            )

    def test_parallel_and_serial_sweeps_identical(self):
        cfg = RunConfig(**CFG)
        session = Session()
        par = session.sweep("ring-acc", cfg, seeds=(1, 2), parallel=True)
        ser = session.sweep("ring-acc", cfg, seeds=(1, 2), parallel=False)
        assert len(par) == len(ser) == 8
        for a, b in zip(par, ser):
            assert a.cell == b.cell
            assert a.outcome.results == b.outcome.results

    def test_closure_apps_fall_back_to_serial(self):
        """Unpicklable apps (closures) still sweep — in-process."""
        bound = 10

        def closure_app(ctx):
            state = ctx.checkpointable_state(lambda: {"i": 0, "acc": 0})
            while state["i"] < bound:
                state["acc"] += ctx.mpi.allreduce(state["i"], SUM)
                state["i"] += 1
                ctx.potential_checkpoint()
            return state["acc"]

        result = Session().sweep(closure_app, RunConfig(**CFG))
        assert len(result) == len(ALL_VARIANTS)
        assert len({tuple(r.outcome.results) for r in result}) == 1

    def test_axes_and_table(self):
        cfg = RunConfig(**CFG)
        result = Session().sweep(
            "ring-acc", cfg,
            variants=(Variant.UNMODIFIED, Variant.FULL),
            seeds=(7, 8),
            nprocs=(2, 3),
            grid={"codec": ("full", "packed")},
        )
        assert len(result) == 2 * 2 * 2 * 2
        table = result.table()
        assert {row["codec"] for row in table} == {"full", "packed"}
        assert {row["nprocs"] for row in table} == {2, 3}
        one = result.outcome(
            variant=Variant.FULL, seed=7, nprocs=3, codec="packed"
        )
        assert one.checkpoints_committed >= 1
        assert len(result.select(variant=Variant.FULL)) == 8

    def test_grid_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="grid names unknown"):
            Session().sweep("ring-acc", RunConfig(**CFG), grid={"nope": (1,)})

    def test_grid_rejects_dedicated_axis_fields(self):
        with pytest.raises(ConfigError, match="dedicated axes"):
            Session().sweep("ring-acc", RunConfig(**CFG), grid={"seed": (1, 2)})

    def test_sweep_honours_storage_path(self, tmp_path):
        """A config that names a storage_path persists each cell to its own
        subdirectory of it (Session.run and Session.sweep must agree that
        storage_path means disk)."""
        import os

        cfg = RunConfig(storage_path=str(tmp_path / "ckpt"), **CFG)
        result = Session().sweep(
            "ring-acc", cfg, variants=(Variant.FULL, Variant.NO_APP_STATE)
        )
        assert all(r.outcome.checkpoints_committed >= 1 for r in result)
        cell_dirs = sorted(os.listdir(tmp_path / "ckpt"))
        assert len(cell_dirs) == 2
        for d in cell_dirs:
            assert os.path.exists(tmp_path / "ckpt" / d / "refs" / "COMMIT")

    def test_ckpt_knobs_honoured_without_storage_path(self):
        """ckpt_* knobs must reach the default in-memory storage too —
        the compressed run writes fewer bytes, the results are identical."""
        flat = Session().run(
            "ring-acc", RunConfig(ckpt_incremental=False, **CFG), params=60
        )
        packed = Session().run(
            "ring-acc", RunConfig(ckpt_codec="zlib", **CFG), params=60
        )
        assert packed.results == flat.results
        assert packed.checkpoints_committed == flat.checkpoints_committed >= 1
        assert packed.storage_bytes_written < flat.storage_bytes_written

    def test_explicit_factory_still_wins(self):
        counting_storage_factory.created.clear()
        session = Session(storage_factory=counting_storage_factory)
        session.run("ring-acc", RunConfig(**CFG))
        assert len(counting_storage_factory.created) == 1

    def test_storage_path_beats_session_factory_in_sweep(self, tmp_path):
        """run() and sweep() agree: a config naming a storage_path persists
        even when the session carries a default factory."""
        counting_storage_factory.created.clear()
        session = Session(storage_factory=counting_storage_factory)
        cfg = RunConfig(storage_path=str(tmp_path / "ckpt"), **CFG)
        session.sweep("ring-acc", cfg, variants=(Variant.FULL,))
        assert counting_storage_factory.created == []
        assert (tmp_path / "ckpt").exists()

    def test_by_variant_requires_unique_variants(self):
        result = Session().sweep(
            "ring-acc", RunConfig(**CFG),
            variants=(Variant.FULL,), seeds=(1, 2),
        )
        with pytest.raises(ConfigError, match="by_variant"):
            result.by_variant()

    def test_sweep_storage_factory_injected(self):
        counting_storage_factory.created.clear()
        result = Session().sweep(
            "ring-acc", RunConfig(**CFG),
            variants=(Variant.FULL, Variant.NO_APP_STATE),
            storage_factory=counting_storage_factory,
            parallel=False,  # keep the counting factory in-process
        )
        assert len(counting_storage_factory.created) == 2
        assert all(r.outcome.checkpoints_committed >= 1 for r in result)

    def test_failures_schedule_applied_per_cell(self):
        cfg = RunConfig(**CFG)
        result = Session().sweep(
            "ring-acc", cfg,
            variants=(Variant.FULL,), seeds=(4, 5),
            failures=FailureSchedule.single(0.004, 1),
        )
        assert all(len(r.outcome.attempts) == 2 for r in result)
        gold = Session().run("ring-acc", cfg)
        assert result.outcome(seed=4).results == gold.results


class TestSweepFallback:
    def test_unpicklable_param_falls_back_to_serial(self):
        """Regression: the picklability probe skipped cell params, so a
        closure param reached the pool and killed it (BrokenProcessPool /
        AttributeError) instead of falling back to in-process serial."""
        bound = 9

        def closure_param():
            return bound

        par = Session().sweep(
            "param-driven", RunConfig(**CFG),
            variants=(Variant.FULL,), params=[closure_param, 5],
            parallel=True,
        )
        ser = Session().sweep(
            "param-driven", RunConfig(**CFG),
            variants=(Variant.FULL,), params=[closure_param, 5],
            parallel=False,
        )
        assert len(par) == 2
        for a, b in zip(par, ser):
            assert a.outcome.results == b.outcome.results

    def test_unpicklable_grid_value_falls_back(self):
        """Grid values ride RunConfig replacements; an unpicklable one
        (an instance of a locally-defined class) must also divert the
        sweep to the serial path, not crash it."""
        from repro.simmpi.clock import CostModel

        class LocalCost(CostModel):
            """Local subclass: instances cannot be pickled."""

        result = Session().sweep(
            "ring-acc", RunConfig(**CFG),
            variants=(Variant.UNMODIFIED, Variant.FULL),
            grid={"cost_model": (LocalCost(),)},
            parallel=True,
        )
        assert len(result) == 2
        assert all(r.outcome.results for r in result)

    def test_session_map_parallel_matches_serial(self):
        session = Session()
        payloads = list(range(8))
        par = session.map(_square_for_map, payloads, parallel=True)
        ser = session.map(_square_for_map, payloads, parallel=False)
        assert par == ser == [p * p for p in payloads]

    def test_session_map_closure_falls_back(self):
        k = 3
        out = Session().map(lambda p: p + k, [1, 2, 3], parallel=True)
        assert out == [4, 5, 6]


def _square_for_map(p):
    return p * p


class TestVariantStrings:
    @pytest.fixture(scope="class")
    def result(self):
        return Session().sweep(
            "ring-acc", RunConfig(**CFG),
            variants=(Variant.FULL, Variant.NO_APP_STATE), seeds=(1, 2),
        )

    def test_select_accepts_value_spelling(self, result):
        assert result.select(variant="full") == result.select(
            variant=Variant.FULL
        )
        assert len(result.select(variant="no-app-state")) == 2

    def test_select_accepts_member_name_spelling(self, result):
        assert result.select(variant="NO_APP_STATE") == result.select(
            variant=Variant.NO_APP_STATE
        )

    def test_outcome_accepts_string(self, result):
        by_string = result.outcome(variant="full", seed=1)
        by_enum = result.outcome(variant=Variant.FULL, seed=1)
        assert by_string is by_enum

    def test_unknown_variant_string_rejected(self, result):
        with pytest.raises(ConfigError, match="unknown variant"):
            result.select(variant="fullest")

    def test_sweep_variants_axis_accepts_strings(self):
        swept = Session().sweep(
            "ring-acc", RunConfig(**CFG), variants=("piggyback", "full")
        )
        assert [r.cell.variant for r in swept] == [
            Variant.PIGGYBACK, Variant.FULL,
        ]


class TestRunVariantSuiteSatellites:
    def test_storage_factory_injected(self):
        counting_storage_factory.created.clear()
        run_variant_suite(
            ring_app, RunConfig(**CFG),
            variants=(Variant.FULL,),
            storage_factory=counting_storage_factory,
        )
        assert len(counting_storage_factory.created) == 1
        assert counting_storage_factory.created[0].commits >= 1

    def test_replace_import_is_module_scope(self):
        import inspect

        from repro.runtime import driver

        src = inspect.getsource(driver.run_variant_suite)
        assert "from dataclasses import replace" not in src


class TestDeprecationShims:
    def test_top_level_shims_warn_and_work(self):
        cfg = RunConfig(**CFG)
        with pytest.warns(DeprecationWarning):
            out = repro.run_with_recovery(ring_app, cfg)
        assert out.results
        with pytest.warns(DeprecationWarning):
            outcomes = repro.run_variant_suite(
                ring_app, cfg, variants=(Variant.PIGGYBACK,)
            )
        assert outcomes[Variant.PIGGYBACK].results == out.results

    def test_stable_reexports(self):
        assert repro.Session is Session
        assert repro.RunConfig is RunConfig
        assert repro.Variant is Variant
        assert callable(repro.app)
        assert default_storage_factory().path is None
