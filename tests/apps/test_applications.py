"""The three paper applications: numerical correctness vs references,
multiple process counts, and recovery equivalence under injected failures."""

import numpy as np
import pytest

from repro.apps import dense_cg, laplace, neurosys, stencil3d
from repro.runtime import RunConfig, run_with_recovery
from repro.simmpi import FailureSchedule


def cfg(nprocs=4, **kw):
    base = dict(nprocs=nprocs, seed=21, checkpoint_interval=0.004,
                detector_timeout=0.04)
    base.update(kw)
    return RunConfig(**base)


class TestDenseCG:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_converges_to_ones(self, nprocs):
        params = dense_cg.CGParams(n=48, iterations=40)
        out = run_with_recovery(dense_cg.build(params), cfg(nprocs))
        for r in out.results:
            assert r["max_error"] < 1e-8

    def test_uneven_row_distribution(self):
        params = dense_cg.CGParams(n=50, iterations=40)  # 50 rows over 4 ranks
        out = run_with_recovery(dense_cg.build(params), cfg(4))
        assert out.results[0]["max_error"] < 1e-8

    def test_matrix_block_is_symmetric_slice(self):
        full_rows = [dense_cg.make_matrix_block(16, r, r + 1)[0] for r in range(16)]
        full = np.vstack(full_rows)
        assert np.allclose(full, full.T)
        # strictly diagonally dominant
        for i in range(16):
            off = np.abs(full[i]).sum() - abs(full[i, i])
            assert abs(full[i, i]) > off

    def test_checkpoints_taken_during_solve(self):
        params = dense_cg.CGParams(n=48, iterations=50)
        out = run_with_recovery(dense_cg.build(params), cfg())
        assert out.checkpoints_committed >= 1

    def test_recovery_bitwise_identical(self):
        params = dense_cg.CGParams(n=48, iterations=50)
        gold = run_with_recovery(dense_cg.build(params), cfg())
        rec = run_with_recovery(
            dense_cg.build(params), cfg(),
            failures=FailureSchedule.single(0.006, 2),
        )
        assert rec.results == gold.results
        assert len(rec.attempts) == 2


class TestLaplace:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_matches_serial_reference(self, nprocs):
        params = laplace.LaplaceParams(n=32, iterations=30)
        out = run_with_recovery(laplace.build(params), cfg(nprocs))
        ref = laplace.laplace_reference(32, 30)
        parallel_sum = sum(r["checksum"] for r in out.results)
        assert parallel_sum == pytest.approx(float(ref.sum()), abs=1e-8)

    def test_block_decomposition_covers_grid(self):
        params = laplace.LaplaceParams(n=33, iterations=5)  # uneven rows
        out = run_with_recovery(laplace.build(params), cfg(4))
        rows = sorted(r["rows"] for r in out.results)
        assert rows[0][0] == 0 and rows[-1][1] == 33
        for (_, hi), (lo, _) in zip(rows, rows[1:]):
            assert hi == lo

    def test_boundary_values_fixed(self):
        ref = laplace.laplace_reference(16, 50)
        initial = laplace.make_initial_grid(16)
        assert np.array_equal(ref[0], initial[0])
        assert np.array_equal(ref[-1], initial[-1])

    def test_recovery_bitwise_identical(self):
        params = laplace.LaplaceParams(n=32, iterations=80)
        gold = run_with_recovery(laplace.build(params), cfg())
        virtual = gold.total_virtual_time
        rec = run_with_recovery(
            laplace.build(params), cfg(),
            failures=FailureSchedule.single(virtual * 0.5, 1),
        )
        assert rec.results == gold.results
        assert len(rec.attempts) == 2


class TestNeurosys:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_matches_serial_reference(self, nprocs):
        params = neurosys.NeurosysParams(grid=6, iterations=15)
        out = run_with_recovery(neurosys.build(params), cfg(nprocs))
        ref = neurosys.neurosys_reference(params)
        parallel_sum = sum(r["checksum"] for r in out.results)
        assert parallel_sum == pytest.approx(float(ref.sum()), abs=1e-10)

    def test_dynamics_bounded(self):
        """The leak term keeps the network stable: activities stay bounded."""
        params = neurosys.NeurosysParams(grid=8, iterations=60)
        v = neurosys.neurosys_reference(params)
        assert np.all(np.abs(v) < 10.0)

    def test_collective_pattern_five_allgathers_one_gather(self):
        """The paper's signature: 5 allgathers + 1 gather per iteration."""
        params = neurosys.NeurosysParams(grid=4, iterations=10)
        out = run_with_recovery(neurosys.build(params), cfg())
        stats = out.layer_stats[0]
        # 6 collectives per iteration (5 allgather + 1 gather); the layer
        # counts every collective call.
        assert stats.collectives == 6 * params.iterations

    def test_recovery_bitwise_identical(self):
        params = neurosys.NeurosysParams(grid=6, iterations=30)
        gold = run_with_recovery(neurosys.build(params), cfg())
        rec = run_with_recovery(
            neurosys.build(params), cfg(),
            failures=FailureSchedule.single(gold.total_virtual_time * 0.5, 3),
        )
        assert rec.results == gold.results


class TestStencil3D:
    """The two-module gallery app (entry in stencil3d.py, halo exchange
    imported from stencil3d_halo.py)."""

    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_matches_serial_reference(self, nprocs):
        params = stencil3d.Stencil3DParams(n=12, iterations=8)
        out = run_with_recovery(stencil3d.build(params), cfg(nprocs))
        ref = stencil3d.stencil3d_reference(12, 8)
        parallel_sum = sum(r["checksum"] for r in out.results)
        assert parallel_sum == pytest.approx(float(ref.sum()), abs=1e-8)

    def test_uneven_plane_distribution_covers_volume(self):
        params = stencil3d.Stencil3DParams(n=13, iterations=4)  # 13 planes / 4
        out = run_with_recovery(stencil3d.build(params), cfg(4))
        planes = sorted(r["planes"] for r in out.results)
        assert planes[0][0] == 0 and planes[-1][1] == 13
        for (_, hi), (lo, _) in zip(planes, planes[1:]):
            assert hi == lo

    def test_boundary_faces_fixed(self):
        ref = stencil3d.stencil3d_reference(10, 20)
        initial = stencil3d.make_initial_field(10)
        assert np.array_equal(ref[0], initial[0])
        assert np.array_equal(ref[-1], initial[-1])
        assert np.array_equal(ref[:, 0, :], initial[:, 0, :])
        assert np.array_equal(ref[:, :, -1], initial[:, :, -1])

    def test_unit_spans_both_modules(self):
        unit = stencil3d.unit()
        assert {"stencil3d_main", "halo_exchange_z"} <= set(unit.functions)
        assert not unit.diagnostics

    def test_recovery_bitwise_identical(self):
        params = stencil3d.Stencil3DParams(n=12, iterations=16)
        gold = run_with_recovery(stencil3d.build(params), cfg())
        rec = run_with_recovery(
            stencil3d.build(params), cfg(),
            failures=FailureSchedule.single(gold.total_virtual_time * 0.5, 1),
        )
        assert rec.results == gold.results
        assert len(rec.attempts) == 2


class TestStateSizeAccounting:
    def test_cg_state_grows_quadratically(self):
        small = dense_cg.CGParams(n=128).state_bytes(4)
        large = dense_cg.CGParams(n=256).state_bytes(4)
        assert large >= 3.5 * small

    def test_laplace_state_linear_in_rows(self):
        small = laplace.LaplaceParams(n=64).state_bytes(4)
        large = laplace.LaplaceParams(n=128).state_bytes(4)
        assert 3.0 <= large / small <= 5.0
