"""The farm engine: caching, durability, resume, retry accounting."""

import os

import pytest

from repro.errors import FarmJobError
from repro.farm.engine import Farm
from repro.farm.jobs import DONE, FAILED

# Module-level jobs (picklable; the tests run them serially anyway).

CALL_LOG: list = []


def double(x):
    CALL_LOG.append(x)
    return x * 2


def fail_if_flagged(payload):
    """Fails while the flag file exists — the 'interrupted campaign' stand-in."""
    x, flag = payload
    if x == 3 and os.path.exists(flag):
        raise RuntimeError("cell 3 exploded")
    return x * 10


def always_fails(x):
    raise ValueError(f"no dice for {x}")


@pytest.fixture(autouse=True)
def _clear_log():
    CALL_LOG.clear()


class TestCaching:
    def test_warm_map_executes_nothing(self, tmp_path):
        farm = Farm(str(tmp_path / "farm"))
        cold = farm.map(double, [1, 2, 3], parallel=False)
        assert cold == [2, 4, 6]
        assert farm.last_stats.executed == 3
        # A fresh Farm over the same directory — a new process, in effect.
        warm = Farm(str(tmp_path / "farm"))
        assert warm.map(double, [1, 2, 3], parallel=False) == [2, 4, 6]
        assert warm.last_stats.hits == 3
        assert warm.last_stats.executed == 0
        assert CALL_LOG == [1, 2, 3]  # the warm pass never called double

    def test_partial_overlap_executes_only_new_cells(self, tmp_path):
        farm = Farm(str(tmp_path / "farm"))
        farm.map(double, [1, 2], parallel=False)
        out = farm.map(double, [2, 3], parallel=False)
        assert out == [4, 6]
        assert farm.last_stats.hits == 1
        assert farm.last_stats.executed == 1

    def test_memory_farm_works(self):
        farm = Farm(None)
        assert farm.map(double, [5], parallel=False) == [10]
        assert farm.map(double, [5], parallel=False) == [10]
        assert farm.last_stats.hits == 1

    def test_different_salt_misses(self, tmp_path):
        Farm(str(tmp_path / "farm"), salt="a").map(double, [1], parallel=False)
        other = Farm(str(tmp_path / "farm"), salt="b")
        other.map(double, [1], parallel=False)
        assert other.last_stats.executed == 1

    def test_unpicklable_payload_runs_uncached(self, tmp_path):
        farm = Farm(str(tmp_path / "farm"))
        out = farm.map(lambda p: p[0](), [(lambda: 7,)], parallel=False)
        assert out == [7]
        assert farm.last_stats.uncached == 1
        assert farm.last_stats.hits == farm.last_stats.misses == 0

    def test_cacheable_predicate_exempts_cells(self, tmp_path):
        farm = Farm(str(tmp_path / "farm"))
        farm.map(double, [1, 2], parallel=False, cacheable=lambda x: x != 2)
        assert farm.last_stats.uncached == 1
        farm.map(double, [1, 2], parallel=False, cacheable=lambda x: x != 2)
        assert farm.last_stats.hits == 1       # cell 1 cached
        assert farm.last_stats.uncached == 1   # cell 2 re-ran


class TestResume:
    def test_interrupted_run_resumes_where_it_stopped(self, tmp_path):
        flag = str(tmp_path / "flag")
        open(flag, "w").close()
        payloads = [(x, flag) for x in range(1, 6)]
        labels = lambda p: f"cell-{p[0]}"  # noqa: E731
        farm = Farm(str(tmp_path / "farm"))
        # Small batches: completed batches persist even though cell 3 dies.
        with pytest.raises(FarmJobError, match="cell 3 exploded"):
            farm.map(
                fail_if_flagged, payloads, parallel=False, batch_size=2, labels=labels
            )
        assert farm.last_stats.executed == 4
        assert farm.last_stats.failed == 1
        # "The interruption is fixed" — the next run executes only cell 3.
        os.unlink(flag)
        resumed = Farm(str(tmp_path / "farm"))
        out = resumed.map(
            fail_if_flagged, payloads, parallel=False, batch_size=2, labels=labels
        )
        assert out == [10, 20, 30, 40, 50]
        assert resumed.last_stats.hits == 4
        assert resumed.last_stats.executed == 1
        # The durable record remembers both attempts of the dying cell.
        record = next(r for r in resumed.jobs.records() if r.label == "cell-3")
        assert record.status == DONE
        assert record.attempts == 2

    def test_attempt_counts_accumulate_then_exhaust(self, tmp_path):
        farm = Farm(str(tmp_path / "farm"), max_attempts=2)
        for expected_attempts in (1, 2):
            with pytest.raises(FarmJobError):
                farm.map(always_fails, [9], parallel=False)
            (record,) = list(farm.jobs.records())
            assert record.status == FAILED
            assert record.attempts == expected_attempts
            assert "no dice" in record.error
        # Attempts exhausted: reported without executing again.
        with pytest.raises(FarmJobError, match="attempts exhausted"):
            farm.map(always_fails, [9], parallel=False)
        (record,) = list(farm.jobs.records())
        assert record.attempts == 2  # third call did not execute
        assert "always_fails" in (record.trace or "")  # post-mortem kept

    def test_exhausted_cell_does_not_block_others(self, tmp_path):
        """One poisoned cell must not wedge the rest of a campaign: good
        cells still execute and cache, and gc re-arms the poisoned one."""
        farm = Farm(str(tmp_path / "farm"), max_attempts=1)
        with pytest.raises(FarmJobError):
            farm.map(always_fails, [9], parallel=False)
        # Cell 9 is exhausted, but cells 1 and 2 run (mixed via two fns is
        # not possible in one map call, so check caching across calls).
        farm.map(double, [1, 2], parallel=False)
        assert farm.last_stats.executed == 2
        with pytest.raises(FarmJobError, match="attempts exhausted"):
            farm.map(always_fails, [9], parallel=False)
        swept = farm.gc()
        assert swept["failed_jobs"] == 1
        # Re-armed: the cell executes again instead of reporting exhausted.
        with pytest.raises(FarmJobError, match="no dice"):
            farm.map(always_fails, [9], parallel=False)
        (record,) = [r for r in farm.jobs.records() if r.fn.endswith("always_fails")]
        assert record.attempts == 1  # accounting reset by gc

    def test_stale_running_record_is_reclaimed(self, tmp_path):
        farm = Farm(str(tmp_path / "farm"))
        farm.map(double, [4], parallel=False)
        (record,) = list(farm.jobs.records())
        # Simulate a hard interruption: running record, no result.
        record.status = "running"
        farm.jobs.save(record)
        farm.cache.delete(record.key)
        again = Farm(str(tmp_path / "farm"))
        assert again.map(double, [4], parallel=False) == [8]
        (record,) = list(again.jobs.records())
        assert record.status == DONE
        assert record.attempts == 2


class TestMaintenance:
    def test_gc_drops_stale_salt_and_orphans(self, tmp_path):
        old = Farm(str(tmp_path / "farm"), salt="old-code")
        old.map(double, [1, 2], parallel=False)
        new = Farm(str(tmp_path / "farm"), salt="new-code")
        new.map(double, [1], parallel=False)
        swept = new.gc()
        assert swept == {"stale_jobs": 2, "failed_jobs": 0, "orphan_results": 0}
        status = new.status()
        assert status["jobs"]["total"] == 1
        assert status["cache"]["entries"] == 1
        # The surviving entry still hits.
        new.map(double, [1], parallel=False)
        assert new.last_stats.hits == 1

    def test_status_counts(self, tmp_path):
        farm = Farm(str(tmp_path / "farm"))
        farm.map(double, [1, 2, 3], parallel=False)
        status = farm.status()
        assert status["jobs"]["done"] == 3
        assert status["jobs"]["failed"] == 0
        assert status["cache"]["entries"] == 3
        assert status["cache"]["bytes_at_rest"] > 0

    def test_existing_directory_keeps_its_codec(self, tmp_path):
        Farm(str(tmp_path / "farm"), codec="zlib").map(double, [1], parallel=False)
        reopened = Farm(str(tmp_path / "farm"), codec="none")
        assert reopened.cache.codec.name == "zlib"
        reopened.map(double, [1], parallel=False)
        assert reopened.last_stats.hits == 1


class TestCrashLoopingCells:
    def test_crash_looping_cell_reported_after_max_attempts(self, tmp_path):
        """A cell that dies *with the orchestrator* leaves a 'running'
        record each time; once attempts hit the cap it must be reported,
        not reclaimed forever."""
        from repro.farm.fingerprint import fingerprint, fn_identity

        farm = Farm(str(tmp_path / "farm"), max_attempts=2)
        key = fingerprint(double, 7, farm.salt)
        for _ in range(2):  # two interrupted executions, no result landed
            farm.jobs.claim(key, fn_identity(double), "cell-7", farm.salt)
        with pytest.raises(FarmJobError, match="interrupted mid-execution"):
            farm.map(double, [7], parallel=False)

    def test_gc_reconciles_and_rearms_running_records(self, tmp_path):
        farm = Farm(str(tmp_path / "farm"))
        farm.map(double, [1, 2], parallel=False)
        records = list(farm.jobs.records())
        # Record 1: result landed but the 'done' write was interrupted.
        records[0].status = "running"
        farm.jobs.save(records[0])
        # Record 2: claimed, executed nothing (crash), result missing.
        records[1].status = "running"
        farm.jobs.save(records[1])
        farm.cache.delete(records[1].key)
        swept = farm.gc()
        assert swept["failed_jobs"] == 1  # the resultless zombie, re-armed
        statuses = {r.key: r.status for r in farm.jobs.records()}
        assert statuses[records[0].key] == "done"  # reconciled, still a hit
        assert records[1].key not in statuses
        farm.map(double, [1, 2], parallel=False)
        assert farm.last_stats.hits == 1
        assert farm.last_stats.executed == 1
