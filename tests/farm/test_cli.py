"""The repro-farm CLI: run / status / gc, bench trajectory, hit-rate gate."""

import json

import pytest

from repro.farm.cli import main as farm_main


def _run_sweep(tmp_path, *extra):
    return farm_main(
        [
            "run", "--dir", str(tmp_path / "farm"),
            "--mode", "sweep", "--apps", "laplace",
            "--seeds", "1", "--nprocs", "2", "--serial",
            *extra,
        ]
    )


class TestRun:
    def test_sweep_twice_warm_hits_and_bench_trajectory(self, tmp_path, capsys):
        bench = str(tmp_path / "BENCH_5.json")
        assert _run_sweep(tmp_path, "--bench-out", bench, "--label", "cold") == 0
        assert (
            _run_sweep(
                tmp_path, "--bench-out", bench, "--label", "warm",
                "--expect-hit-rate", "0.9",
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "hit rate 100.0% >= required 90.0%" in out
        doc = json.loads(open(bench).read())
        cold, warm = doc["records"]
        assert cold["label"] == "cold" and warm["label"] == "warm"
        assert cold["cache_hits"] == 0 and cold["executed"] == warm["cells"]
        assert warm["cache_hits"] == warm["cells"] and warm["executed"] == 0
        assert warm["hit_rate"] == 1.0
        assert warm["virtual_time"] == pytest.approx(cold["virtual_time"])
        assert warm["wall_seconds"] < cold["wall_seconds"]

    def test_cold_run_fails_hit_rate_gate(self, tmp_path, capsys):
        assert _run_sweep(tmp_path, "--expect-hit-rate", "0.9") == 1
        assert "below required" in capsys.readouterr().err

    def test_chaos_mode_writes_report(self, tmp_path, capsys):
        report = str(tmp_path / "report.json")
        code = farm_main(
            [
                "run", "--dir", str(tmp_path / "farm"), "--mode", "chaos",
                "--seed", "13", "--count", "2", "--serial", "--out", report,
            ]
        )
        assert code == 0
        doc = json.loads(open(report).read())
        assert doc["passed"] == 2
        assert "2/2 scenarios passed" in capsys.readouterr().out


class TestStatusGc:
    def test_status_and_gc(self, tmp_path, capsys):
        _run_sweep(tmp_path)
        capsys.readouterr()  # drain the sweep's own output
        assert farm_main(["status", "--dir", str(tmp_path / "farm")]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["jobs"]["done"] == status["jobs"]["total"] > 0
        assert status["cache"]["entries"] == status["jobs"]["done"]
        assert farm_main(["gc", "--dir", str(tmp_path / "farm")]) == 0
        assert "removed 0 stale job(s)" in capsys.readouterr().out

    def test_missing_dir_is_an_error_not_a_fresh_farm(self, tmp_path, capsys):
        missing = str(tmp_path / "no-such-farm")
        assert farm_main(["status", "--dir", missing]) == 2
        assert farm_main(["gc", "--dir", missing]) == 2
        assert "no farm directory" in capsys.readouterr().err
        import os
        assert not os.path.exists(missing)  # nothing conjured by the typo
