"""Farm integration: sweeps and chaos campaigns through the cache."""

import pickle

from repro.api.session import Session
from repro.chaos.campaign import CampaignConfig, run_campaign
from repro.farm import Farm
from repro.runtime.config import RunConfig


class TestSweepThroughFarm:
    def test_warm_sweep_is_bit_identical_and_executes_nothing(self, tmp_path):
        session = Session()
        cfg = RunConfig(nprocs=3)
        cold_farm = Farm(str(tmp_path / "farm"))
        cold = session.sweep(
            "laplace", cfg, seeds=[0, 1], parallel=False, farm=cold_farm
        )
        assert cold_farm.last_stats.executed == len(cold)
        assert cold.farm_stats is cold_farm.last_stats

        warm_farm = Farm(str(tmp_path / "farm"))  # fresh process, same dir
        warm = session.sweep(
            "laplace", cfg, seeds=[0, 1], parallel=False, farm=warm_farm
        )
        assert warm_farm.last_stats.hits == len(warm)
        assert warm_farm.last_stats.executed == 0
        for a, b in zip(cold.rows, warm.rows):
            assert a.cell == b.cell
            assert pickle.dumps(a.outcome.results) == pickle.dumps(b.outcome.results)
            assert a.outcome.total_virtual_time == b.outcome.total_virtual_time
            assert a.outcome.storage_bytes_written == b.outcome.storage_bytes_written

    def test_persistent_storage_cells_bypass_cache(self, tmp_path):
        """Cells writing checkpoints to their own directory have side
        effects a cache hit would skip — they must run uncached."""
        session = Session()
        cfg = RunConfig(nprocs=2, storage_path=str(tmp_path / "ckpts"))
        farm = Farm(str(tmp_path / "farm"))
        session.sweep("laplace", cfg, variants=["full"], parallel=False, farm=farm)
        assert farm.last_stats.uncached == 1
        session.sweep("laplace", cfg, variants=["full"], parallel=False, farm=farm)
        assert farm.last_stats.uncached == 1
        assert farm.last_stats.hits == 0


class TestChaosThroughFarm:
    def test_warm_campaign_bit_identical_with_zero_executions(self, tmp_path):
        cfg = CampaignConfig(master_seed=13, count=4)
        cold_farm = Farm(str(tmp_path / "farm"))
        cold = run_campaign(cfg, farm=cold_farm, parallel=False)
        assert cold_farm.total_stats.executed == cold_farm.total_stats.cells

        warm_farm = Farm(str(tmp_path / "farm"))
        warm = run_campaign(cfg, farm=warm_farm, parallel=False)
        # The acceptance bar: zero simulator cells executed, report
        # bit-identical (wall_seconds excluded by fingerprint()).
        assert warm_farm.total_stats.executed == 0
        assert warm_farm.total_stats.hits == warm_farm.total_stats.cells
        assert warm.fingerprint() == cold.fingerprint()

    def test_changed_campaign_reuses_overlapping_cells(self, tmp_path):
        farm = Farm(str(tmp_path / "farm"))
        run_campaign(CampaignConfig(master_seed=13, count=2), farm=farm, parallel=False)
        hits_before = farm.total_stats.hits
        executed_before = farm.total_stats.executed
        # Growing the campaign keeps the generator's prefix stable, so the
        # first two scenarios (and any shared baselines) are cache hits;
        # only genuinely new cells execute.
        run_campaign(CampaignConfig(master_seed=13, count=4), farm=farm, parallel=False)
        assert farm.total_stats.hits - hits_before >= 2
        new_cells = farm.total_stats.cells - (hits_before + executed_before)
        assert farm.total_stats.executed - executed_before < new_cells
