"""Cache-key fingerprints: stability, sensitivity, graceful refusal."""

from repro.farm.fingerprint import code_salt, fingerprint, fn_identity


def job_a(payload):
    return payload


def job_b(payload):
    return payload


class TestFingerprint:
    def test_stable_for_equal_payloads(self):
        assert fingerprint(job_a, (1, "x", 2.5)) == fingerprint(job_a, (1, "x", 2.5))

    def test_sensitive_to_payload(self):
        assert fingerprint(job_a, (1,)) != fingerprint(job_a, (2,))

    def test_sensitive_to_function(self):
        assert fingerprint(job_a, (1,)) != fingerprint(job_b, (1,))

    def test_sensitive_to_salt(self):
        assert fingerprint(job_a, (1,), salt="s1") != fingerprint(job_a, (1,), salt="s2")

    def test_unpicklable_payload_returns_none(self):
        assert fingerprint(job_a, (lambda: None,)) is None

    def test_fn_identity_names_module_and_qualname(self):
        ident = fn_identity(job_a)
        assert ident.endswith(":job_a")
        assert "test_fingerprint" in ident


class TestCodeSalt:
    def test_cached_and_hexadecimal(self):
        salt = code_salt()
        assert salt == code_salt()  # per-process cache
        assert len(salt) == 64
        int(salt, 16)
