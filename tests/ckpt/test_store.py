"""CheckpointStore engine: delta, compression, two-phase commit, GC."""

import numpy as np
import pytest

from repro.ckpt import (
    CheckpointStore,
    DirectoryBackend,
    MemoryBackend,
    RetentionPolicy,
    split_chunks,
)
from repro.ckpt.store import STAGE_MANIFEST
from repro.errors import ManifestCorruptError, StorageError


def make_store(tmp_path=None, **kwargs):
    backend = MemoryBackend() if tmp_path is None else DirectoryBackend(str(tmp_path))
    return CheckpointStore(backend, **kwargs)


class TestSaveLoad:
    def test_roundtrip(self):
        store = make_store()
        obj = {"grid": np.arange(1000.0), "step": 7}
        store.save("rank0/state", 1, obj)
        back = store.load("rank0/state", 1)
        assert back["step"] == 7
        assert np.array_equal(back["grid"], obj["grid"])

    def test_aliasing_survives_roundtrip(self):
        """The whole point of single-stream pickling: shared objects come
        back shared, not duplicated (paper Section 5.1.4)."""
        shared = [1, 2, 3]
        obj = {"a": shared, "b": shared}
        store = make_store()
        store.save("s", 1, obj)
        back = store.load("s", 1)
        assert back["a"] is back["b"]

    def test_multi_chunk_payload(self):
        store = make_store(chunk_size=1024)
        obj = np.arange(4096.0)  # 32 KB payload => many chunks
        manifest = store.save("s", 1, obj)
        assert len(manifest.chunks) > 10
        assert np.array_equal(store.load("s", 1), obj)

    def test_empty_and_tiny_payloads(self):
        store = make_store()
        for gen, obj in enumerate((None, b"", 0, {}), start=1):
            store.save("s", gen, obj)
            assert store.load("s", gen) == obj

    def test_split_chunks_covers_payload(self):
        payload = bytes(range(256)) * 10
        chunks = split_chunks(payload, 100)
        assert b"".join(chunks) == payload
        assert split_chunks(b"", 100) == [b""]


class TestIncremental:
    def test_unchanged_state_costs_no_chunk_bytes(self):
        store = make_store(chunk_size=512)
        obj = {"matrix": np.ones(2048)}
        m1 = store.save("s", 1, obj)
        m2 = store.save("s", 2, obj)
        assert m1.stored_bytes > 0
        assert m2.stored_bytes == 0  # every chunk deduped
        assert m2.reused_chunks == len(m2.chunks)

    def test_partial_change_writes_only_changed_chunks(self):
        store = make_store(chunk_size=1024)
        arr = np.zeros(8192)
        store.save("s", 1, {"a": arr})
        arr[0] = 99.0  # touch the first chunk only
        m2 = store.save("s", 2, {"a": arr})
        assert 0 < m2.stored_bytes < m2.payload_length // 4
        assert m2.reused_chunks > len(m2.chunks) // 2

    def test_full_mode_always_writes(self):
        store = make_store(incremental=False, chunk_size=512)
        obj = {"x": np.ones(1024)}
        m1 = store.save("s", 1, obj)
        m2 = store.save("s", 2, obj)
        assert m2.stored_bytes == m1.stored_bytes > 0

    def test_dedup_crosses_streams(self):
        store = make_store(chunk_size=512)
        obj = np.arange(2048.0)
        store.save("rank0/state", 1, obj)
        m = store.save("rank1/state", 1, obj)
        assert m.stored_bytes == 0


class TestCompression:
    def test_zlib_stores_fewer_bytes(self):
        obj = {"grid": np.zeros(65536)}  # highly compressible
        flat = make_store(codec="none")
        packed = make_store(codec="zlib")
        m_flat = flat.save("s", 1, obj)
        m_packed = packed.save("s", 1, obj)
        assert m_packed.stored_bytes < m_flat.stored_bytes // 10
        assert np.array_equal(packed.load("s", 1)["grid"], obj["grid"])

    def test_codec_change_does_not_poison_dedup(self, tmp_path):
        """Chunks are keyed per codec: a store reopened with a different
        codec must not dedupe against bytes it cannot decode."""
        obj = {"m": np.arange(4096.0)}
        first = make_store(tmp_path, codec="zlib", chunk_size=1024)
        first.save("s", 1, obj)
        second = make_store(tmp_path, codec="none", chunk_size=1024)
        m2 = second.save("s", 2, obj)
        assert m2.stored_bytes > 0  # no cross-codec dedup
        assert np.array_equal(second.load("s", 2)["m"], obj["m"])
        assert np.array_equal(second.load("s", 1)["m"], obj["m"])

    def test_codec_change_between_generations_still_loads(self, tmp_path):
        first = make_store(tmp_path, codec="none")
        first.save("s", 1, [1, 2, 3])
        second = make_store(tmp_path, codec="zlib")
        second.save("s", 2, [4, 5, 6])
        # Each generation's manifest remembers its own codec.
        assert second.load("s", 1) == [1, 2, 3]
        assert second.load("s", 2) == [4, 5, 6]


class TestTwoPhaseCommit:
    def test_crash_before_manifest_preserves_previous_generation(self):
        store = make_store(chunk_size=256)
        store.save("s", 1, {"v": np.arange(512.0)})

        class Boom(RuntimeError):
            pass

        def crash_mid_write(stage, index, total):
            if stage == "chunk" and index >= 1:
                raise Boom()

        with pytest.raises(Boom):
            store.save("s", 2, {"v": np.arange(512.0) + 1}, progress=crash_mid_write)
        assert not store.has_generation("s", 2)
        assert store.validate_generation("s", 1)
        assert store.load("s", 1)["v"][3] == 3.0

    def test_crash_at_manifest_publish_leaves_generation_invisible(self):
        store = make_store()
        store.save("s", 1, "good")

        def crash_at_manifest(stage, index, total):
            if stage == STAGE_MANIFEST:
                raise RuntimeError("torn")

        with pytest.raises(RuntimeError):
            store.save("s", 2, "doomed", progress=crash_at_manifest)
        assert store.generations("s") == [1]
        # Orphaned chunks from the torn write are reclaimed by the full
        # sweep (the recovery driver runs it after a failed attempt).
        assert store.sweep_orphans() >= 1
        assert store.load("s", 1) == "good"

    def test_rewriting_a_generation_reclaims_replaced_chunks(self):
        """Regression (chaos campaign): a recovery attempt that re-takes an
        uncommitted epoch's checkpoint republishes the same (stream,
        generation); the replaced manifest's chunks used to become
        permanent orphans."""
        store = make_store(chunk_size=256)
        store.save("s", 1, {"v": np.arange(512.0)})
        store.save("s", 1, {"v": np.arange(512.0) + 1})  # rewrite, new bytes
        assert store.load("s", 1)["v"][0] == 1.0
        assert store.sweep_orphans() == 0

    def test_rewrite_keeps_chunks_shared_with_other_generations(self):
        store = make_store(chunk_size=256)
        payload = {"v": np.arange(512.0)}
        store.save("s", 1, payload)
        store.save("s", 2, payload)        # dedups against generation 1
        store.save("s", 1, {"v": np.arange(512.0) + 9})
        # Generation 2 still references the original chunks; the rewrite
        # must not reclaim them out from under it.
        assert store.validate_generation("s", 2)
        assert store.load("s", 2)["v"][3] == 3.0
        assert store.sweep_orphans() == 0

    def test_rewrite_bumps_mutation_stamp(self):
        store = make_store()
        store.save("s", 1, "old")
        before = store.mutations
        store.save("s", 1, "new")
        assert store.mutations > before

    def test_corrupt_manifest_is_rejected(self):
        store = make_store()
        store.save("s", 1, "data")
        store.corrupt_manifest("s", 1)
        with pytest.raises(ManifestCorruptError):
            store.load("s", 1)
        assert not store.validate_generation("s", 1)

    def test_missing_chunk_detected(self):
        store = make_store()
        manifest = store.save("s", 1, "data")
        store.backend.delete(
            store._chunk_key(manifest.chunks[0].digest, manifest.codec)
        )
        with pytest.raises(StorageError):
            store.load("s", 1)
        assert not store.validate_generation("s", 1)


class TestRetentionAndGC:
    def _filled(self, **kwargs):
        store = make_store(**kwargs)
        for gen in range(1, 7):
            store.save("rank0/state", gen, {"gen": gen, "pad": np.arange(100.0) * gen})
        return store

    def test_keep_last_k(self):
        store = self._filled(retention=RetentionPolicy(keep_last=2))
        removed = store.collect()
        assert removed == 4
        assert store.generations("rank0/state") == [5, 6]

    def test_keep_every_nth(self):
        store = self._filled(
            retention=RetentionPolicy(keep_last=1, keep_every=3)
        )
        store.collect()
        assert store.generations("rank0/state") == [3, 6]

    def test_pinned_generation_survives(self):
        store = self._filled(retention=RetentionPolicy(keep_last=1))
        store.collect(pinned=2)
        assert store.generations("rank0/state") == [2, 6]

    def test_chunk_sweep_reclaims_unreferenced_bytes(self):
        store = self._filled(retention=RetentionPolicy(keep_last=1))
        before = len(store.backend.keys("objects/"))
        store.collect()
        after = len(store.backend.keys("objects/"))
        assert after < before
        # The survivor still loads after the sweep.
        assert store.load("rank0/state", 6)["gen"] == 6

    def test_shared_chunks_survive_sweep(self):
        """A chunk referenced by a live generation is kept even when a dead
        generation also referenced it."""
        store = make_store(chunk_size=512, retention=RetentionPolicy(keep_last=1))
        constant = np.arange(1024.0)
        store.save("s", 1, {"const": constant, "step": 1})
        store.save("s", 2, {"const": constant, "step": 2})
        store.collect()
        assert store.generations("s") == [2]
        assert np.array_equal(store.load("s", 2)["const"], constant)

    def test_retention_policy_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            RetentionPolicy(keep_last=0)
        with pytest.raises(ConfigError):
            RetentionPolicy(keep_every=0)


class TestRecords:
    def test_record_roundtrip(self, tmp_path):
        store = make_store(tmp_path)
        assert not store.has_record("COMMIT")
        store.put_record("COMMIT", [{"epoch": 3}])
        assert store.get_record("COMMIT") == [{"epoch": 3}]


class TestAccounting:
    def test_logical_vs_stored_bytes(self):
        store = make_store(codec="zlib", chunk_size=1024)
        obj = {"zeros": np.zeros(16384)}
        store.save("s", 1, obj)
        store.save("s", 2, obj)
        assert store.logical_bytes > 2 * 16384 * 8
        assert store.bytes_written < store.logical_bytes // 10
        assert store.chunks_reused > 0
        assert store.generations_saved == 2
