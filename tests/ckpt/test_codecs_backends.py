"""Codec registry and backend contracts."""

import os

import pytest

from repro.ckpt import (
    DirectoryBackend,
    MemoryBackend,
    get_chunk_codec,
    list_backends,
    list_chunk_codecs,
    make_backend,
    register_chunk_codec,
)
from repro.errors import ConfigError, StorageError

PAYLOADS = [b"", b"x", b"hello world" * 100, bytes(range(256)) * 64]


class TestCodecs:
    @pytest.mark.parametrize("name", ["none", "zlib", "lzma"])
    @pytest.mark.parametrize("payload", PAYLOADS)
    def test_roundtrip(self, name, payload):
        codec = get_chunk_codec(name)
        assert codec.decode(codec.encode(payload)) == payload

    def test_compression_compresses_redundant_data(self):
        redundant = b"0123456789" * 10_000
        for name in ("zlib", "lzma"):
            assert len(get_chunk_codec(name).encode(redundant)) < len(redundant) // 10

    def test_unknown_codec_is_config_error(self):
        with pytest.raises(ConfigError, match="unknown checkpoint codec"):
            get_chunk_codec("snappy")

    def test_registry_is_open(self):
        class Reversing:
            name = "reversing"

            def encode(self, data):
                return data[::-1]

            def decode(self, data):
                return data[::-1]

        register_chunk_codec("reversing", Reversing)
        try:
            assert "reversing" in list_chunk_codecs()
            codec = get_chunk_codec("reversing")
            assert codec.decode(codec.encode(b"abc")) == b"abc"
        finally:
            from repro.ckpt import codecs

            codecs._REGISTRY.pop("reversing", None)


@pytest.fixture(params=["memory", "directory"])
def backend(request, tmp_path):
    if request.param == "memory":
        return MemoryBackend()
    return DirectoryBackend(str(tmp_path / "blobs"))


class TestBackends:
    def test_put_get_roundtrip(self, backend):
        backend.put("objects/ab/abcdef", b"payload")
        assert backend.get("objects/ab/abcdef") == b"payload"
        assert backend.exists("objects/ab/abcdef")
        assert backend.size("objects/ab/abcdef") == len(b"payload")

    def test_missing_key_raises(self, backend):
        assert not backend.exists("nope")
        with pytest.raises(StorageError):
            backend.get("nope")
        with pytest.raises(StorageError):
            backend.size("nope")

    def test_delete_is_idempotent(self, backend):
        backend.put("a/b", b"x")
        backend.delete("a/b")
        backend.delete("a/b")
        assert not backend.exists("a/b")

    def test_keys_prefix_filter(self, backend):
        backend.put("objects/aa/one", b"1")
        backend.put("objects/bb/two", b"2")
        backend.put("manifests/s/gen1.mft", b"3")
        assert backend.keys("objects/") == ["objects/aa/one", "objects/bb/two"]
        assert len(backend.keys()) == 3

    def test_overwrite_replaces(self, backend):
        backend.put("k", b"old")
        backend.put("k", b"new-and-longer")
        assert backend.get("k") == b"new-and-longer"

    def test_wipe(self, backend):
        backend.put("x/y", b"1")
        backend.wipe()
        assert backend.keys() == []

    def test_directory_publish_leaves_no_tmp(self, tmp_path):
        backend = DirectoryBackend(str(tmp_path))
        backend.put("deep/nested/key", b"data")
        leftovers = [
            name
            for _dir, _dirs, files in os.walk(str(tmp_path))
            for name in files
            if ".tmp." in name
        ]
        assert leftovers == []

    def test_registry(self, tmp_path):
        assert set(list_backends()) >= {"memory", "directory"}
        assert isinstance(make_backend("memory"), MemoryBackend)
        assert isinstance(
            make_backend("directory", str(tmp_path / "d")), DirectoryBackend
        )
        with pytest.raises(ConfigError, match="unknown checkpoint backend"):
            make_backend("s3")
