"""Setuptools shim.

``pip install -e .`` uses PEP 660 and needs the ``wheel`` package; on
fully offline machines without it, use the legacy editable install:

    python setup.py develop

or simply put ``src/`` on ``PYTHONPATH`` / in a ``.pth`` file.
"""

from setuptools import setup

setup()
